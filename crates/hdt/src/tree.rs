//! The hierarchical data tree (HDT) arena.
//!
//! [`Hdt`] owns all nodes of one document in a flat vector and exposes the traversal
//! primitives that the DSL semantics (Figure 7) need: children lookup by tag, children
//! lookup by tag *and* position, descendant search by tag, and parent lookup.

use crate::error::{HdtError, Result};
use crate::node::{Node, NodeId};

/// A hierarchical data tree: a rooted, ordered tree of `(tag, pos, data)` nodes.
///
/// Nodes are stored in an arena; [`NodeId`]s index into it.  The root always has id 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hdt {
    nodes: Vec<Node>,
}

impl Hdt {
    /// Creates a tree consisting only of a root node with the given tag.
    pub fn with_root(tag: impl Into<String>) -> Self {
        Hdt {
            nodes: vec![Node::new(tag, 0, None)],
        }
    }

    /// Id of the root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Total number of nodes in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this tree.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Checked access to a node.
    pub fn try_node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or_else(|| {
            HdtError::InvalidNode(format!("{id} out of range ({} nodes)", self.len()))
        })
    }

    /// Tag of a node.
    #[inline]
    pub fn tag(&self, id: NodeId) -> &str {
        &self.node(id).tag
    }

    /// Position of a node among same-tag siblings.
    #[inline]
    pub fn pos(&self, id: NodeId) -> usize {
        self.node(id).pos
    }

    /// Data stored at a node (only leaves carry data).
    #[inline]
    pub fn data(&self, id: NodeId) -> Option<&str> {
        self.node(id).data.as_deref()
    }

    /// True if the node has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.node(id).children.is_empty()
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of a node in document order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Adds a child node under `parent`.  The `pos` field is computed automatically as
    /// the number of existing children of `parent` with the same tag.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        data: Option<String>,
    ) -> NodeId {
        let tag = tag.into();
        let pos = self
            .children(parent)
            .iter()
            .filter(|c| self.node(**c).tag == tag)
            .count();
        self.add_child_with_pos(parent, tag, pos, data)
    }

    /// Adds a child node under `parent` with an explicit `pos` value.
    pub fn add_child_with_pos(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        pos: usize,
        data: Option<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let mut node = Node::new(tag, pos, data);
        node.parent = Some(parent);
        self.nodes.push(node);
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Children of `id` whose tag equals `tag` (the `children` DSL construct).
    pub fn children_with_tag(&self, id: NodeId, tag: &str) -> Vec<NodeId> {
        self.children(id)
            .iter()
            .copied()
            .filter(|c| self.node(*c).tag == tag)
            .collect()
    }

    /// Children of `id` whose tag equals `tag` and whose pos equals `pos`
    /// (the `pchildren` DSL construct).
    pub fn children_with_tag_pos(&self, id: NodeId, tag: &str, pos: usize) -> Vec<NodeId> {
        self.children(id)
            .iter()
            .copied()
            .filter(|c| {
                let n = self.node(*c);
                n.tag == tag && n.pos == pos
            })
            .collect()
    }

    /// A single child of `id` with the given tag and pos (the `child` node-extractor
    /// construct of the predicate language).  Returns `None` if no such child exists.
    pub fn child(&self, id: NodeId, tag: &str, pos: usize) -> Option<NodeId> {
        self.children(id).iter().copied().find(|c| {
            let n = self.node(*c);
            n.tag == tag && n.pos == pos
        })
    }

    /// All (strict) descendants of `id` with the given tag, in pre-order
    /// (the `descendants` DSL construct).
    pub fn descendants_with_tag(&self, id: NodeId, tag: &str) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            if self.node(n).tag == tag {
                out.push(n);
            }
            for c in self.children(n).iter().rev() {
                stack.push(*c);
            }
        }
        out
    }

    /// All nodes in pre-order (root first).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            out.push(n);
            for c in self.children(n).iter().rev() {
                stack.push(*c);
            }
        }
        out
    }

    /// Iterator over every node id in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Set of distinct tags appearing in the tree, excluding the root's tag.
    pub fn tags(&self) -> Vec<String> {
        let mut tags: Vec<String> = Vec::new();
        for n in &self.nodes {
            if !tags.iter().any(|t| t == &n.tag) {
                tags.push(n.tag.clone());
            }
        }
        tags
    }

    /// Set of distinct `pos` values appearing in the tree.
    pub fn positions(&self) -> Vec<usize> {
        let mut ps: Vec<usize> = Vec::new();
        for n in &self.nodes {
            if !ps.contains(&n.pos) {
                ps.push(n.pos);
            }
        }
        ps.sort_unstable();
        ps
    }

    /// All leaf data values in the tree (used for constant mining in predicate
    /// universe construction, rule (4) of Figure 10).
    pub fn data_values(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| n.data.as_deref())
            .collect()
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the whole tree (max depth over all nodes).
    pub fn height(&self) -> usize {
        self.ids().map(|id| self.depth(id)).max().unwrap_or(0)
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Counts "elements": internal nodes plus the root.  Used to report the
    /// `#Elements` statistic of Table 1.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.children.is_empty())
            .count()
            .max(1)
    }

    /// Validates internal consistency (parent/child symmetry and pos correctness).
    /// Intended for tests and debugging.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(HdtError::Structure("tree has no nodes".into()));
        }
        if self.nodes[0].parent.is_some() {
            return Err(HdtError::Structure("root must not have a parent".into()));
        }
        for id in self.ids() {
            let n = self.node(id);
            for c in &n.children {
                let child = self.try_node(*c)?;
                if child.parent != Some(id) {
                    return Err(HdtError::Structure(format!(
                        "child {c} of {id} has wrong parent link"
                    )));
                }
            }
            if let Some(p) = n.parent {
                if !self.node(p).children.contains(&id) {
                    return Err(HdtError::Structure(format!(
                        "{id} not listed among children of its parent {p}"
                    )));
                }
                // pos must equal the index among same-tag siblings.
                let expected = self
                    .children(p)
                    .iter()
                    .filter(|s| self.node(**s).tag == n.tag)
                    .position(|s| *s == id);
                if expected != Some(n.pos) {
                    return Err(HdtError::Structure(format!(
                        "{id} has pos {} but is the {:?}'th `{}` child of {p}",
                        n.pos, expected, n.tag
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Convenience builder for constructing trees in a nested, declarative style.
///
/// ```
/// use mitra_hdt::HdtBuilder;
/// let tree = HdtBuilder::new("root")
///     .open("Person")
///     .leaf("name", "Alice")
///     .close()
///     .build();
/// assert_eq!(tree.len(), 3);
/// ```
#[derive(Debug)]
pub struct HdtBuilder {
    tree: Hdt,
    stack: Vec<NodeId>,
}

impl HdtBuilder {
    /// Starts a new tree with the given root tag.
    pub fn new(root_tag: impl Into<String>) -> Self {
        let tree = Hdt::with_root(root_tag);
        HdtBuilder {
            stack: vec![tree.root()],
            tree,
        }
    }

    fn top(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Opens a new internal node and makes it the current parent.
    pub fn open(mut self, tag: impl Into<String>) -> Self {
        let id = self.tree.add_child(self.top(), tag, None);
        self.stack.push(id);
        self
    }

    /// Adds a leaf node carrying data under the current parent.
    pub fn leaf(mut self, tag: impl Into<String>, data: impl Into<String>) -> Self {
        self.tree.add_child(self.top(), tag, Some(data.into()));
        self
    }

    /// Adds an empty (data-less) leaf under the current parent.
    pub fn empty(mut self, tag: impl Into<String>) -> Self {
        self.tree.add_child(self.top(), tag, None);
        self
    }

    /// Closes the current parent, returning to its parent.
    ///
    /// # Panics
    /// Panics if called more times than [`HdtBuilder::open`].
    pub fn close(mut self) -> Self {
        assert!(self.stack.len() > 1, "close() without matching open()");
        self.stack.pop();
        self
    }

    /// Finishes building and returns the tree.
    pub fn build(self) -> Hdt {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hdt {
        HdtBuilder::new("root")
            .open("Person")
            .leaf("name", "Alice")
            .leaf("id", "1")
            .open("Friendship")
            .open("Friend")
            .leaf("fid", "2")
            .leaf("years", "3")
            .close()
            .close()
            .close()
            .open("Person")
            .leaf("name", "Bob")
            .leaf("id", "2")
            .close()
            .build()
    }

    #[test]
    fn builder_produces_consistent_tree() {
        let t = sample();
        t.validate().expect("tree should validate");
        assert_eq!(t.tag(t.root()), "root");
        assert_eq!(t.children_with_tag(t.root(), "Person").len(), 2);
    }

    #[test]
    fn pos_assignment_counts_same_tag_siblings() {
        let t = sample();
        let persons = t.children_with_tag(t.root(), "Person");
        assert_eq!(t.pos(persons[0]), 0);
        assert_eq!(t.pos(persons[1]), 1);
    }

    #[test]
    fn children_with_tag_pos_filters_both() {
        let t = sample();
        assert_eq!(t.children_with_tag_pos(t.root(), "Person", 1).len(), 1);
        assert_eq!(t.children_with_tag_pos(t.root(), "Person", 5).len(), 0);
    }

    #[test]
    fn descendants_search_is_preorder_and_deep() {
        let t = sample();
        let names = t.descendants_with_tag(t.root(), "name");
        assert_eq!(names.len(), 2);
        assert_eq!(t.data(names[0]), Some("Alice"));
        assert_eq!(t.data(names[1]), Some("Bob"));
        let years = t.descendants_with_tag(t.root(), "years");
        assert_eq!(years.len(), 1);
    }

    #[test]
    fn child_lookup_by_tag_and_pos() {
        let t = sample();
        let p0 = t.children_with_tag(t.root(), "Person")[0];
        let name = t.child(p0, "name", 0).unwrap();
        assert_eq!(t.data(name), Some("Alice"));
        assert!(t.child(p0, "name", 1).is_none());
    }

    #[test]
    fn depth_and_height() {
        let t = sample();
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.height(), 4); // root -> Person -> Friendship -> Friend -> fid
    }

    #[test]
    fn data_values_and_tags() {
        let t = sample();
        let vals = t.data_values();
        assert!(vals.contains(&"Alice"));
        assert!(vals.contains(&"3"));
        let tags = t.tags();
        assert!(tags.iter().any(|s| s == "Friendship"));
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let t = sample();
        let order = t.preorder();
        assert_eq!(order.len(), t.len());
        let mut seen = order.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), t.len());
        assert_eq!(order[0], t.root());
    }

    #[test]
    fn validate_detects_bad_pos() {
        let mut t = sample();
        // Corrupt a pos on purpose.
        let persons = t.children_with_tag(t.root(), "Person");
        t.nodes[persons[1].index()].pos = 7;
        assert!(t.validate().is_err());
    }

    #[test]
    fn try_node_out_of_range_errors() {
        let t = sample();
        assert!(t.try_node(NodeId(9999)).is_err());
    }

    #[test]
    fn element_and_leaf_counts() {
        let t = sample();
        assert_eq!(t.leaf_count(), 6);
        assert!(t.element_count() >= 4);
    }
}
