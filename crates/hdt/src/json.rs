//! From-scratch JSON parsing, serialization and the JSON→HDT mapping.
//!
//! The parser accepts the full JSON grammar (RFC 8259): objects, arrays, strings with
//! escapes (including `\uXXXX` surrogate pairs), numbers, booleans and null.
//!
//! Section 3 of the paper maps a JSON document to an HDT as follows: each key/value
//! pair becomes a node whose tag is the key and whose data is the value (for scalar
//! values); objects and arrays become internal nodes with `data = nil`; an array value
//! under key `k` becomes several nodes tagged `k` with `pos` 0, 1, 2, ….

use crate::error::{HdtError, Result, MAX_PARSE_DEPTH};
use crate::tree::Hdt;
use crate::NodeId;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64 (integers round-trip exactly up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the string content if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Renders a scalar value the way it is stored as HDT node data.
    fn scalar_data(&self) -> Option<String> {
        match self {
            JsonValue::Null => Some("null".to_string()),
            JsonValue::Bool(b) => Some(b.to_string()),
            JsonValue::Number(n) => Some(format_number(*n)),
            JsonValue::String(s) => Some(s.clone()),
            _ => None,
        }
    }

    /// Number of object/array values in this subtree (the `#Elements` statistic).
    pub fn element_count(&self) -> usize {
        match self {
            JsonValue::Array(items) => {
                1 + items.iter().map(JsonValue::element_count).sum::<usize>()
            }
            JsonValue::Object(fields) => {
                1 + fields.iter().map(|(_, v)| v.element_count()).sum::<usize>()
            }
            _ => 0,
        }
    }

    /// Converts the value into an HDT rooted at a node tagged `root_tag`.
    pub fn to_hdt(&self, root_tag: &str) -> Hdt {
        let mut tree = Hdt::with_root(root_tag);
        let root = tree.root();
        fill(&mut tree, root, self);
        tree
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }
}

fn fill(tree: &mut Hdt, parent: NodeId, value: &JsonValue) {
    match value {
        JsonValue::Object(fields) => {
            for (key, v) in fields {
                add_entry(tree, parent, key, v, 0);
            }
        }
        JsonValue::Array(items) => {
            // A bare array at this level: entries become `item` nodes with increasing pos.
            for (i, v) in items.iter().enumerate() {
                add_entry(tree, parent, "item", v, i);
            }
        }
        scalar => {
            if let Some(d) = scalar.scalar_data() {
                tree.add_child_with_pos(parent, "value", 0, Some(d));
            }
        }
    }
}

fn add_entry(tree: &mut Hdt, parent: NodeId, key: &str, value: &JsonValue, pos: usize) {
    match value {
        JsonValue::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                add_entry(tree, parent, key, item, i);
            }
        }
        JsonValue::Object(fields) => {
            let id = tree.add_child_with_pos(parent, key, pos, None);
            for (k, v) in fields {
                add_entry(tree, id, k, v, 0);
            }
        }
        scalar => {
            tree.add_child_with_pos(parent, key, pos, scalar.scalar_data());
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(input: &str) -> Result<JsonValue> {
    let mut p = JsonParser::new(input);
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(HdtError::parse(
            "trailing characters after JSON value",
            p.pos,
        ));
    }
    Ok(v)
}

/// Parses a JSON document and converts it to an HDT rooted at `root`.
pub fn json_to_hdt(input: &str) -> Result<Hdt> {
    let _span = mitra_trace::span("ingest", "json_to_hdt");
    let tree = parse_json(input)?.to_hdt("root");
    mitra_trace::counter_add!("ingest.json.docs", 1);
    mitra_trace::counter_add!("ingest.json.nodes", tree.len() as u64);
    Ok(tree)
}

/// Formats an f64 the way JSON integers are usually written (no trailing `.0`).
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(v: &JsonValue, indent: usize, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => out.push_str(&format_number(*n)),
        JsonValue::String(s) => write_json_string(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        JsonValue::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                write_json_string(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

fn write_compact(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => out.push_str(&format_number(*n)),
        JsonValue::String(s) => write_json_string(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Current object/array nesting depth, bounded by [`MAX_PARSE_DEPTH`].
    depth: usize,
}

impl<'a> JsonParser<'a> {
    fn new(input: &'a str) -> Self {
        JsonParser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    /// Charges one level of container nesting; typed error past the bound.
    fn enter(&mut self) -> Result<()> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(HdtError::DepthLimit {
                limit: MAX_PARSE_DEPTH,
                offset: self.pos,
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(HdtError::parse(
                format!("expected '{}'", b as char),
                self.pos,
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.enter()?;
                let v = self.parse_object();
                self.leave();
                v
            }
            Some(b'[') => {
                self.enter()?;
                let v = self.parse_array();
                self.leave();
                v
            }
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(HdtError::parse(
                format!("unexpected character '{}'", c as char),
                self.pos,
            )),
            None => Err(HdtError::parse("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(HdtError::parse(format!("expected '{word}'"), self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(HdtError::parse("expected ',' or '}' in object", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            let value = self.parse_value()?;
            items.push(value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(HdtError::parse("expected ',' or ']' in array", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(HdtError::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect \uXXXX low surrogate.
                                if self.input[self.pos..].starts_with("\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(char::from_u32(combined).unwrap_or('\u{FFFD}'));
                                } else {
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                            continue;
                        }
                        _ => return Err(HdtError::parse("invalid escape sequence", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character; `peek` saw a byte, so one is
                    // there, but degrade to a typed error rather than panic.
                    let Some(ch) = self.input[self.pos..].chars().next() else {
                        return Err(HdtError::parse("unterminated string", self.pos));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(HdtError::parse("truncated \\u escape", self.pos));
        }
        let hex = &self.input[self.pos..self.pos + 4];
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| HdtError::parse("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| HdtError::parse(format!("invalid number '{text}'"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOCIAL: &str = r#"{
      "Person": [
        {"id": 1, "name": "Alice", "Friendship": {"Friend": [{"fid": 2, "years": 3}]}},
        {"id": 2, "name": "Bob"}
      ]
    }"#;

    #[test]
    fn parses_nested_objects_and_arrays() {
        let v = parse_json(SOCIAL).unwrap();
        let persons = v.get("Person").unwrap();
        match persons {
            JsonValue::Array(items) => assert_eq!(items.len(), 2),
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn scalar_types_parse() {
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("-12.5e1").unwrap(), JsonValue::Number(-125.0));
        assert_eq!(
            parse_json("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".to_string())
        );
    }

    #[test]
    fn unicode_escapes_incl_surrogates() {
        assert_eq!(
            parse_json("\"\\u0041\"").unwrap(),
            JsonValue::String("A".into())
        );
        assert_eq!(
            parse_json("\"\\uD83D\\uDE00\"").unwrap(),
            JsonValue::String("😀".into())
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("tru").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"abc").is_err());
    }

    #[test]
    fn hdt_mapping_arrays_get_positions() {
        let tree = json_to_hdt(SOCIAL).unwrap();
        tree.validate().unwrap();
        let persons = tree.children_with_tag(tree.root(), "Person");
        assert_eq!(persons.len(), 2);
        assert_eq!(tree.pos(persons[0]), 0);
        assert_eq!(tree.pos(persons[1]), 1);
        let name = tree.child(persons[0], "name", 0).unwrap();
        assert_eq!(tree.data(name), Some("Alice"));
        // Friend array entries nested two levels down.
        let friendship = tree.child(persons[0], "Friendship", 0).unwrap();
        let friends = tree.children_with_tag(friendship, "Friend");
        assert_eq!(friends.len(), 1);
        assert_eq!(
            tree.data(tree.child(friends[0], "years", 0).unwrap()),
            Some("3")
        );
    }

    #[test]
    fn numbers_are_stored_without_trailing_zero() {
        let tree = json_to_hdt("{\"x\": 5, \"y\": 5.5}").unwrap();
        let x = tree.child(tree.root(), "x", 0).unwrap();
        let y = tree.child(tree.root(), "y", 0).unwrap();
        assert_eq!(tree.data(x), Some("5"));
        assert_eq!(tree.data(y), Some("5.5"));
    }

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = parse_json(SOCIAL).unwrap();
        let pretty = v.to_string_pretty();
        let compact = v.to_string_compact();
        assert_eq!(parse_json(&pretty).unwrap(), v);
        assert_eq!(parse_json(&compact).unwrap(), v);
        assert!(compact.len() <= pretty.len());
    }

    #[test]
    fn element_count_counts_objects_and_arrays() {
        let v = parse_json(SOCIAL).unwrap();
        // object root + Person array + 2 person objects + Friendship + Friend array + friend object
        assert_eq!(v.element_count(), 7);
    }

    #[test]
    fn depth_limit_is_a_typed_error_not_a_crash() {
        // Recursing to the 10k bound needs more stack than the default 2 MiB
        // test thread; the production guard exists precisely so callers never
        // reach the overflow.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let limit = crate::error::MAX_PARSE_DEPTH;
                let deep = "[".repeat(limit + 1);
                match parse_json(&deep) {
                    Err(HdtError::DepthLimit { limit: l, .. }) => assert_eq!(l, limit),
                    other => panic!("expected depth-limit error, got {other:?}"),
                }
                // Exactly at the limit still parses.
                let ok = format!("{}1{}", "[".repeat(limit), "]".repeat(limit));
                assert!(parse_json(&ok).is_ok());
            })
            .expect("spawn big-stack thread")
            .join()
            .expect("no panic");
    }

    #[test]
    fn bare_array_root_maps_to_item_nodes() {
        let tree = json_to_hdt("[10, 20, 30]").unwrap();
        let items = tree.children_with_tag(tree.root(), "item");
        assert_eq!(items.len(), 3);
        assert_eq!(tree.pos(items[2]), 2);
        assert_eq!(tree.data(items[2]), Some("30"));
    }
}
