//! From-scratch XML parsing, serialization and the XML→HDT mapping.
//!
//! The parser supports the subset of XML needed for data documents: elements,
//! attributes, text content, character entities (`&lt; &gt; &amp; &quot; &apos;`),
//! numeric entities, comments, CDATA sections, processing instructions and an XML
//! declaration.  DTDs and namespaces-as-semantics are out of scope (namespace prefixes
//! are kept as part of the tag name).
//!
//! Per Section 3 of the paper, the HDT mapping turns *attributes and text content into
//! nested elements*, so that an element with a mix of attributes, text, and nested
//! elements is representable uniformly.

use crate::error::{HdtError, Result, MAX_PARSE_DEPTH};
use crate::tree::Hdt;
use crate::NodeId;

/// A parsed XML element tree (the concrete syntax tree, before HDT conversion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name (possibly containing a namespace prefix).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element (trimmed).
    pub text: Option<String>,
}

impl XmlNode {
    /// Creates an element with the given name and no content.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            text: None,
        }
    }

    /// Total number of elements in this subtree (including `self`).
    pub fn element_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(XmlNode::element_count)
            .sum::<usize>()
    }
}

/// A parsed XML document: prolog (if any) plus the root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDocument {
    /// The root element.
    pub root: XmlNode,
}

impl XmlDocument {
    /// Converts the document into a hierarchical data tree (Section 3).
    ///
    /// * each element becomes an internal node tagged with the element name;
    /// * each attribute `a="v"` becomes a leaf child tagged `a` with data `v`;
    /// * text content becomes a leaf child tagged `text` with the text as data.
    pub fn to_hdt(&self) -> Hdt {
        let mut tree = Hdt::with_root(&self.root.name);
        let root = tree.root();
        Self::fill(&mut tree, root, &self.root);
        tree
    }

    fn fill(tree: &mut Hdt, id: NodeId, elem: &XmlNode) {
        // Tags are interned on entry: `add_child` funnels every name through the
        // shared global interner.
        for (k, v) in &elem.attributes {
            tree.add_child(id, k, Some(v.clone()));
        }
        if let Some(t) = &elem.text {
            if !t.is_empty() {
                tree.add_child(id, "text", Some(t.clone()));
            }
        }
        for c in &elem.children {
            let cid = tree.add_child(id, &c.name, None);
            Self::fill(tree, cid, c);
        }
    }

    /// Serializes the document back to XML text with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        write_element(&self.root, 0, &mut out);
        out
    }
}

/// Parses an XML document from text.
pub fn parse_xml(input: &str) -> Result<XmlDocument> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if !p.at_end() {
        return Err(HdtError::parse(
            "trailing content after root element",
            p.pos,
        ));
    }
    Ok(XmlDocument { root })
}

/// Parses an XML document and immediately converts it to an HDT.
pub fn xml_to_hdt(input: &str) -> Result<Hdt> {
    let _span = mitra_trace::span("ingest", "xml_to_hdt");
    let tree = parse_xml(input)?.to_hdt();
    mitra_trace::counter_add!("ingest.xml.docs", 1);
    mitra_trace::counter_add!("ingest.xml.nodes", tree.len() as u64);
    Ok(tree)
}

fn write_element(e: &XmlNode, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape(v));
        out.push('"');
    }
    if e.children.is_empty() && e.text.is_none() {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if let Some(t) = &e.text {
        out.push_str(&escape(t));
    }
    if e.children.is_empty() {
        out.push_str("</");
        out.push_str(&e.name);
        out.push_str(">\n");
        return;
    }
    out.push('\n');
    for c in &e.children {
        write_element(c, indent + 1, out);
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(&e.name);
    out.push_str(">\n");
}

/// Escapes the five predefined XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Current element nesting depth, bounded by [`MAX_PARSE_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            match self.input[self.pos..].find("?>") {
                Some(rel) => self.bump(rel + 2),
                None => return Err(HdtError::parse("unterminated XML declaration", self.pos)),
            }
        }
        self.skip_misc();
        if self.starts_with("<!DOCTYPE") {
            // Skip a (non-nested) DOCTYPE declaration.
            match self.input[self.pos..].find('>') {
                Some(rel) => self.bump(rel + 1),
                None => return Err(HdtError::parse("unterminated DOCTYPE", self.pos)),
            }
        }
        self.skip_misc();
        Ok(())
    }

    /// Skips whitespace, comments and processing instructions.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if let Some(rel) = self.input[self.pos..].find("-->") {
                    self.bump(rel + 3);
                    continue;
                }
                // Unterminated comment: consume the rest; parse_element will then error.
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with("<?") {
                if let Some(rel) = self.input[self.pos..].find("?>") {
                    self.bump(rel + 2);
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            return;
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(HdtError::parse("expected a name", self.pos));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_element(&mut self) -> Result<XmlNode> {
        self.skip_misc();
        if self.peek() != Some(b'<') {
            return Err(HdtError::parse("expected '<'", self.pos));
        }
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(HdtError::DepthLimit {
                limit: MAX_PARSE_DEPTH,
                offset: self.pos,
            });
        }
        self.depth += 1;
        let element = self.element_body();
        self.depth -= 1;
        element
    }

    /// Body of [`Parser::parse_element`], past the depth guard, positioned on `<`.
    fn element_body(&mut self) -> Result<XmlNode> {
        self.bump(1);
        let name = self.parse_name()?;
        let mut node = XmlNode::new(name.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    if self.starts_with("/>") {
                        self.bump(2);
                        return Ok(node);
                    }
                    return Err(HdtError::parse("unexpected '/'", self.pos));
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(HdtError::parse(
                            "expected '=' after attribute name",
                            self.pos,
                        ));
                    }
                    self.bump(1);
                    self.skip_ws();
                    let q = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => {
                            return Err(HdtError::parse(
                                "expected quoted attribute value",
                                self.pos,
                            ))
                        }
                    };
                    self.bump(1);
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == q {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.at_end() {
                        return Err(HdtError::parse("unterminated attribute value", start));
                    }
                    let raw = &self.input[start..self.pos];
                    self.bump(1);
                    node.attributes.push((key, unescape(raw, start)?));
                }
                None => return Err(HdtError::parse("unexpected end of input in tag", self.pos)),
            }
        }
        // Content.
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(HdtError::parse(
                    format!("unexpected end of input inside <{name}>"),
                    self.pos,
                ));
            }
            if self.starts_with("</") {
                self.bump(2);
                let close = self.parse_name()?;
                if close != name {
                    return Err(HdtError::parse(
                        format!("mismatched closing tag: expected </{name}>, found </{close}>"),
                        self.pos,
                    ));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(HdtError::parse(
                        "expected '>' after closing tag name",
                        self.pos,
                    ));
                }
                self.bump(1);
                break;
            } else if self.starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(rel) => self.bump(rel + 3),
                    None => return Err(HdtError::parse("unterminated comment", self.pos)),
                }
            } else if self.starts_with("<![CDATA[") {
                self.bump(9);
                match self.input[self.pos..].find("]]>") {
                    Some(rel) => {
                        text.push_str(&self.input[self.pos..self.pos + rel]);
                        self.bump(rel + 3);
                    }
                    None => return Err(HdtError::parse("unterminated CDATA section", self.pos)),
                }
            } else if self.starts_with("<?") {
                match self.input[self.pos..].find("?>") {
                    Some(rel) => self.bump(rel + 2),
                    None => {
                        return Err(HdtError::parse(
                            "unterminated processing instruction",
                            self.pos,
                        ))
                    }
                }
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                node.children.push(child);
            } else {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                text.push_str(&unescape(&self.input[start..self.pos], start)?);
            }
        }
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            node.text = Some(trimmed.to_string());
        }
        Ok(node)
    }
}

/// Resolves XML character and entity references inside `raw`.
fn unescape(raw: &str, offset: usize) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest
            .find(';')
            .ok_or_else(|| HdtError::parse("unterminated entity reference", offset))?;
        let entity = &rest[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                    HdtError::parse(format!("bad numeric entity &{entity};"), offset)
                })?;
                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
            }
            _ if entity.starts_with('#') => {
                let cp: u32 = entity[1..].parse().map_err(|_| {
                    HdtError::parse(format!("bad numeric entity &{entity};"), offset)
                })?;
                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
            }
            other => {
                return Err(HdtError::parse(format!("unknown entity &{other};"), offset));
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOCIAL: &str = r#"<?xml version="1.0"?>
<root>
  <Person id="1">
    <name>Alice</name>
    <Friendship>
      <Friend fid="2" years="3"/>
    </Friendship>
  </Person>
  <Person id="2">
    <name>Bob</name>
  </Person>
</root>"#;

    #[test]
    fn parses_elements_attributes_text() {
        let doc = parse_xml(SOCIAL).unwrap();
        assert_eq!(doc.root.name, "root");
        assert_eq!(doc.root.children.len(), 2);
        let p0 = &doc.root.children[0];
        assert_eq!(p0.attributes, vec![("id".to_string(), "1".to_string())]);
        assert_eq!(p0.children[0].text.as_deref(), Some("Alice"));
    }

    #[test]
    fn hdt_mapping_turns_attributes_into_leaves() {
        let tree = xml_to_hdt(SOCIAL).unwrap();
        tree.validate().unwrap();
        let persons = tree.children_with_tag(tree.root(), "Person");
        assert_eq!(persons.len(), 2);
        let id_leaf = tree.child(persons[0], "id", 0).unwrap();
        assert_eq!(tree.data(id_leaf), Some("1"));
        // text content of <name> becomes a `text` leaf under the name node
        let name = tree.child(persons[0], "name", 0).unwrap();
        let text = tree.child(name, "text", 0).unwrap();
        assert_eq!(tree.data(text), Some("Alice"));
    }

    #[test]
    fn self_closing_and_empty_elements() {
        let doc = parse_xml("<a><b/><c></c></a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
        assert!(doc.root.children[0].children.is_empty());
        assert!(doc.root.children[1].text.is_none());
    }

    #[test]
    fn entity_unescaping() {
        let doc = parse_xml("<a t=\"x &amp; y\">1 &lt; 2 &#65;</a>").unwrap();
        assert_eq!(doc.root.attributes[0].1, "x & y");
        assert_eq!(doc.root.text.as_deref(), Some("1 < 2 A"));
    }

    #[test]
    fn cdata_and_comments_are_handled() {
        let doc = parse_xml("<a><!-- hi --><![CDATA[<raw>&]]></a>").unwrap();
        assert_eq!(doc.root.text.as_deref(), Some("<raw>&"));
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse_xml("<a><b></a></b>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></a><b></b>").is_err());
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(parse_xml("<a>&nope;</a>").is_err());
    }

    #[test]
    fn doctype_and_pi_are_skipped() {
        let doc =
            parse_xml("<?xml version=\"1.0\"?><!DOCTYPE root><?pi data?><root><x>1</x></root>")
                .unwrap();
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        let doc = parse_xml(SOCIAL).unwrap();
        let text = doc.to_string_pretty();
        let doc2 = parse_xml(&text).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn escape_escapes_all_specials() {
        assert_eq!(escape("<&>\"'"), "&lt;&amp;&gt;&quot;&apos;");
    }

    #[test]
    fn depth_limit_is_a_typed_error_not_a_crash() {
        // Recursing to the 10k bound needs more stack than the default 2 MiB
        // test thread; the production guard exists precisely so callers never
        // reach the overflow.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let limit = crate::error::MAX_PARSE_DEPTH;
                let deep = "<a>".repeat(limit + 1);
                match parse_xml(&deep) {
                    Err(HdtError::DepthLimit { limit: l, .. }) => assert_eq!(l, limit),
                    other => panic!("expected depth-limit error, got {other:?}"),
                }
            })
            .expect("spawn big-stack thread")
            .join()
            .expect("no panic");
    }

    #[test]
    fn element_count_counts_subtree() {
        let doc = parse_xml(SOCIAL).unwrap();
        assert_eq!(doc.root.element_count(), 7);
    }
}
