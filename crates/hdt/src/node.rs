//! Node model for hierarchical data trees.
//!
//! A node is the triple `(tag, pos, data)` of Definition 1.  Nodes are stored in a flat
//! arena inside [`crate::tree::Hdt`] and referenced by [`NodeId`], a small copyable
//! index.  Keeping nodes in an arena (rather than `Rc`-linked structures) makes the
//! synthesis algorithms cheap: node sets become sorted `Vec<NodeId>`s and hashing a
//! DFA state is hashing a slice of `u32`s.

use crate::intern::TagId;
use std::fmt;

/// Identifier of a node inside a particular [`crate::Hdt`] arena.
///
/// `NodeId`s are only meaningful with respect to the tree that produced them; they are
/// assigned densely starting from zero (the root is always id 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// Returns the underlying index as a `usize` for arena addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A single node of a hierarchical data tree.
///
/// Mirrors Definition 1: `tag` is the label (an interned [`TagId`]), `pos` the position
/// among same-tag siblings and `data` the payload (only meaningful for leaves).  The
/// parent/children links are maintained by the owning [`crate::Hdt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Label of the node (XML element name, JSON key, synthetic tag, ...), interned.
    pub tag: TagId,
    /// `pos` means this node is the `pos`'th child with tag `tag` under its parent.
    pub pos: usize,
    /// Data stored at the node.  `None` for internal nodes, `Some` for leaves.
    pub data: Option<String>,
    /// Parent link (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

impl Node {
    /// Creates a new node with no parent/children links yet.
    pub fn new(tag: impl Into<TagId>, pos: usize, data: Option<String>) -> Self {
        Node {
            tag: tag.into(),
            pos,
            data,
            parent: None,
            children: Vec::new(),
        }
    }

    /// True when the node stores data and has no children (leaf of the HDT).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::ROOT, NodeId(0));
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(25).to_string(), "n25");
    }

    #[test]
    fn leaf_detection() {
        let mut n = Node::new("name", 0, Some("Alice".into()));
        assert!(n.is_leaf());
        n.children.push(NodeId(3));
        assert!(!n.is_leaf());
    }
}
