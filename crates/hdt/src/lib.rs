//! # mitra-hdt — Hierarchical Data Trees
//!
//! This crate implements the *hierarchical data tree* (HDT) substrate used throughout
//! the Mitra reproduction.  An HDT is a rooted tree whose nodes are triples
//! `(tag, pos, data)` (Definition 1 in the paper): `tag` is a label, `pos` says that the
//! node is the `pos`'th child with that tag under its parent, and `data` is the payload
//! stored at the node (only leaves carry data; internal nodes carry `None`).
//!
//! The crate also contains the two *plug-ins* of the paper's architecture (Figure 14):
//!
//! * [`xml`] — a from-scratch XML parser and serializer plus the XML→HDT mapping of
//!   Section 3 (elements, attributes and text content all become HDT nodes);
//! * [`json`] — a from-scratch JSON parser and serializer plus the JSON→HDT mapping of
//!   Section 3 (objects/arrays become internal nodes, array entries get increasing
//!   `pos` values);
//! * [`html`] — a lenient HTML parser and the HTML→HDT mapping, demonstrating the
//!   "other hierarchical formats" extensibility claimed in Section 6.
//!
//! Finally, [`generate`] contains small helpers used by tests and examples to build
//! trees programmatically.
//!
//! Tags are interned: [`intern`] defines [`Symbol`]/[`TagId`] and the process-wide
//! [`Interner`] every ingestion path funnels through, and [`tree::Hdt`] maintains the
//! pre-order / per-tag occurrence indexes that make `descendants`/`children` lookups
//! `O(log n + k)` range scans (see DESIGN.md §2 "Tree representation & indexing").

// This crate is part of the hardened ingestion surface: panicking shortcuts are
// lint-rejected outside tests (see clippy.toml for the disallowed method list).
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]

pub mod error;
pub mod generate;
pub mod html;
pub mod intern;
pub mod json;
pub mod node;
pub mod tree;
pub mod xml;

pub use error::{HdtError, Result, MAX_PARSE_DEPTH};
pub use html::{parse_html, HtmlDocument, HtmlElement};
pub use intern::{Interner, Symbol, TagId};
pub use json::{parse_json, JsonValue};
pub use node::{Node, NodeId};
pub use tree::{Hdt, HdtBuilder};
pub use xml::{parse_xml, XmlDocument, XmlNode};
