//! Programmatic tree generators used by tests, examples and benchmarks.
//!
//! The centerpiece is [`social_network`], which builds the motivating example of
//! Section 2 of the paper (persons, friendships, years), parameterized by size so the
//! same generator serves both the tiny input-output example and the million-element
//! scalability experiment (E3 in DESIGN.md).

use crate::tree::{Hdt, HdtBuilder};

/// Builds the social-network HDT of Figure 4a with `n_persons` people.
///
/// Person `i` (1-based id) is friends with persons `i+1 .. i+friends_per_person`
/// (wrapping around), and the friendship with person `j` has lasted `i*10 + j`
/// years.  With `n_persons = 2` and `friends_per_person = 1` this is essentially the
/// paper's running example.
pub fn social_network(n_persons: usize, friends_per_person: usize) -> Hdt {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    for i in 1..=n_persons {
        let person = tree.add_child(root, "Person", None);
        tree.add_child(person, "id", Some(i.to_string()));
        tree.add_child(person, "name", Some(person_name(i)));
        if friends_per_person > 0 {
            let friendship = tree.add_child(person, "Friendship", None);
            for k in 1..=friends_per_person {
                let j = (i + k - 1) % n_persons + 1;
                if j == i {
                    continue;
                }
                let friend = tree.add_child(friendship, "Friend", None);
                tree.add_child(friend, "fid", Some(j.to_string()));
                tree.add_child(friend, "years", Some((i * 10 + j).to_string()));
            }
        }
    }
    tree
}

/// Deterministic person name for id `i` ("Alice", "Bob", ... then "user<i>").
pub fn person_name(i: usize) -> String {
    const NAMES: [&str; 8] = [
        "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
    ];
    if i >= 1 && i <= NAMES.len() {
        NAMES[i - 1].to_string()
    } else {
        format!("user{i}")
    }
}

/// The expected relational rows for [`social_network`]: `(name, friend_name, years)`.
///
/// This is the ground-truth output table used to check synthesized programs end to end.
pub fn social_network_rows(n_persons: usize, friends_per_person: usize) -> Vec<[String; 3]> {
    let mut rows = Vec::new();
    for i in 1..=n_persons {
        for k in 1..=friends_per_person {
            let j = (i + k - 1) % n_persons + 1;
            if j == i {
                continue;
            }
            rows.push([person_name(i), person_name(j), (i * 10 + j).to_string()]);
        }
    }
    rows
}

/// Builds the Figure 8 example tree: nested `object` elements with `id` and `text`.
pub fn nested_objects() -> Hdt {
    HdtBuilder::new("root")
        .open("object")
        .leaf("id", "10")
        .leaf("text", "outer-a")
        .open("object")
        .leaf("id", "30")
        .leaf("text", "inner-a")
        .close()
        .close()
        .open("object")
        .leaf("id", "25")
        .leaf("text", "outer-b")
        .open("object")
        .leaf("id", "5")
        .leaf("text", "inner-b")
        .close()
        .close()
        .build()
}

/// A richer variant of [`nested_objects`] for the Figure 8 / Example 3 task with two
/// qualifying outer objects (id < 20) and two non-qualifying ones.
///
/// With a single qualifying object the synthesizer can satisfy the example using a
/// purely positional extractor and no predicate (the simplest consistent program),
/// which is not the paper's intent.  The extra records make the example
/// representative: any consistent program must learn both the id-threshold predicate
/// and the nesting constraint.
pub fn nested_objects_rich() -> Hdt {
    let records: [(&str, &str, &str, &str); 4] = [
        ("10", "outer-a", "99", "inner-a"),
        ("15", "outer-b", "98", "inner-b"),
        ("25", "outer-c", "97", "inner-c"),
        ("30", "outer-d", "96", "inner-d"),
    ];
    let mut builder = HdtBuilder::new("root");
    for (outer_id, outer_text, inner_id, inner_text) in records {
        builder = builder
            .open("object")
            .leaf("id", outer_id)
            .leaf("text", outer_text)
            .open("object")
            .leaf("id", inner_id)
            .leaf("text", inner_text)
            .close()
            .close();
    }
    builder.build()
}

/// A deep chain tree of the given depth: `root / level0 / level1 / ... ` with a single
/// data leaf at the bottom.  Useful for stressing descendant search and node-extractor
/// depth limits.
pub fn chain(depth: usize) -> Hdt {
    let mut tree = Hdt::with_root("root");
    let mut cur = tree.root();
    for d in 0..depth {
        cur = tree.add_child(cur, format!("level{d}"), None);
    }
    tree.add_child(cur, "value", Some("bottom".to_string()));
    tree
}

/// A wide tree: `n` children under the root, each with a `val` leaf holding its index.
pub fn wide(n: usize) -> Hdt {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    for i in 0..n {
        let item = tree.add_child(root, "item", None);
        tree.add_child(item, "val", Some(i.to_string()));
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_network_structure() {
        let t = social_network(4, 2);
        t.validate().unwrap();
        assert_eq!(t.children_with_tag(t.root(), "Person").len(), 4);
        let rows = social_network_rows(4, 2);
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn social_network_skips_self_friendship() {
        // With 1 person, any friendship would be with itself and must be skipped.
        let t = social_network(1, 3);
        let persons = t.children_with_tag(t.root(), "Person");
        let friendship = t.child(persons[0], "Friendship", 0).unwrap();
        assert!(t.children_with_tag(friendship, "Friend").is_empty());
        assert!(social_network_rows(1, 3).is_empty());
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(person_name(1), "Alice");
        assert_eq!(person_name(2), "Bob");
        assert_eq!(person_name(100), "user100");
    }

    #[test]
    fn chain_has_expected_depth() {
        let t = chain(10);
        assert_eq!(t.height(), 11);
        assert_eq!(t.descendants_with_tag(t.root(), "value").len(), 1);
    }

    #[test]
    fn wide_has_expected_breadth() {
        let t = wide(50);
        assert_eq!(t.children_with_tag(t.root(), "item").len(), 50);
        assert_eq!(t.len(), 101);
    }

    #[test]
    fn nested_objects_rich_has_two_qualifying_outer_objects() {
        let t = nested_objects_rich();
        // Four outer objects, each with one nested object.
        assert_eq!(t.children_with_tag(t.root(), "object").len(), 4);
        assert_eq!(t.descendants_with_tag(t.root(), "object").len(), 8);
        // Exactly two outer ids fall below the paper's threshold of 20.
        let qualifying = t
            .children_with_tag(t.root(), "object")
            .iter()
            .filter(|&&obj| {
                t.children_with_tag(obj, "id")
                    .first()
                    .and_then(|&id| t.node(id).data.as_deref())
                    .and_then(|d| d.parse::<i64>().ok())
                    .is_some_and(|id| id < 20)
            })
            .count();
        assert_eq!(qualifying, 2);
    }

    #[test]
    fn nested_objects_matches_figure8_shape() {
        let t = nested_objects();
        assert_eq!(t.descendants_with_tag(t.root(), "object").len(), 4);
        assert_eq!(t.descendants_with_tag(t.root(), "text").len(), 4);
    }
}
