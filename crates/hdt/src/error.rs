//! Error types for HDT construction and document parsing.

use std::fmt;

/// Maximum nesting depth the recursive-descent parsers accept.
///
/// Adversarial inputs like `[[[[…]]]]` or `<a><a><a>…` would otherwise drive the
/// parser recursion (and the recursive drop of the parsed value) arbitrarily
/// deep and crash with a stack overflow — an abort, not an unwindable panic, so
/// not something the fault-tolerance layer can catch.  Every parser counts its
/// container nesting and returns [`HdtError::DepthLimit`] past this bound.
pub const MAX_PARSE_DEPTH: usize = 10_000;

/// Errors produced while parsing XML/JSON documents or building trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdtError {
    /// A syntax error at a byte offset in the input document.
    Parse {
        /// Human readable description of what went wrong.
        message: String,
        /// Byte offset into the input where the error was detected.
        offset: usize,
    },
    /// Container nesting exceeded [`MAX_PARSE_DEPTH`] at the given byte offset.
    DepthLimit {
        /// The limit that was exceeded.
        limit: usize,
        /// Byte offset of the container that went one level too deep.
        offset: usize,
    },
    /// The document was well-formed but structurally unusable (e.g. empty).
    Structure(String),
    /// A node id was used with a tree it does not belong to.
    InvalidNode(String),
}

impl HdtError {
    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        HdtError::Parse {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for HdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdtError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            HdtError::DepthLimit { limit, offset } => {
                write!(f, "nesting depth limit ({limit}) exceeded at byte {offset}")
            }
            HdtError::Structure(msg) => write!(f, "structure error: {msg}"),
            HdtError::InvalidNode(msg) => write!(f, "invalid node reference: {msg}"),
        }
    }
}

impl std::error::Error for HdtError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, HdtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error_mentions_offset() {
        let e = HdtError::parse("unexpected '<'", 42);
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("unexpected"));
    }

    #[test]
    fn display_structure_error() {
        let e = HdtError::Structure("empty document".into());
        assert!(e.to_string().contains("empty document"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(HdtError::parse("x", 1), HdtError::parse("x", 1));
        assert_ne!(HdtError::parse("x", 1), HdtError::parse("x", 2));
    }
}
