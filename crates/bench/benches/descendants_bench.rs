//! Criterion benchmark for the tag-interned, indexed HDT arena: the
//! descendants-heavy evaluation workload (see `mitra_bench::descend`) comparing
//!
//! * `naive_walk` — the pre-refactor implementation: a full subtree traversal per
//!   `descendants_with_tag` query, comparing tags node by node
//!   ([`mitra_hdt::Hdt::descendants_with_tag_naive`], kept as the reference);
//! * `indexed_scan` — the pre-order range scan over the per-tag occurrence list
//!   (`O(log n + k)` per query, zero-copy slice results).
//!
//! Also measures end-to-end evaluation of a descendants-based DSL column extractor
//! through both engines' shared `eval_column` path, which now runs on the index.
//! The acceptance bar for the refactor is a ≥2× speedup on this workload; the
//! committed `BENCH_synthesis.json` baseline tracks the measured numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mitra_bench::descend;
use mitra_dsl::ast::ColumnExtractor;
use mitra_dsl::eval::eval_column;
use std::time::Duration;

fn bench_descendants_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("descendants_index");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for (sections, items) in [(100usize, 100usize), (400, 400)] {
        let tree = descend::corpus(sections, items);
        let queries = descend::queries(&tree);
        // Build the index outside the timing loop so `indexed_scan` measures
        // steady-state queries (the build itself is measured separately below).
        let _ = descend::run_indexed(&tree, &queries);

        group.bench_with_input(
            BenchmarkId::new("naive_walk", format!("{sections}x{items}")),
            &(),
            |b, _| b.iter(|| descend::run_naive(&tree, &queries)),
        );
        group.bench_with_input(
            BenchmarkId::new("indexed_scan", format!("{sections}x{items}")),
            &(),
            |b, _| b.iter(|| descend::run_indexed(&tree, &queries)),
        );
        group.bench_with_input(
            BenchmarkId::new("index_build", format!("{sections}x{items}")),
            &(),
            |b, _| {
                b.iter(|| {
                    // Cloning resets the derived index; the first query rebuilds it.
                    // The timing therefore covers arena clone + cold index build —
                    // an upper bound on the one-time cost a fresh tree pays.
                    let fresh = tree.clone();
                    fresh.descendants_with_tag(fresh.root(), "anchor").len()
                })
            },
        );
    }
    group.finish();
}

fn bench_descendants_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("descendants_eval");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let tree = descend::corpus(200, 200);
    // descendants(children(s, section), anchor): one selective descendants query per
    // section — the shape DFA construction and program evaluation produce.
    let pi = ColumnExtractor::descendants(
        ColumnExtractor::children(ColumnExtractor::Input, "section"),
        "anchor",
    );
    let _ = eval_column(&tree, &pi);
    group.bench_function("eval_column/descendants_per_section", |b| {
        b.iter(|| eval_column(&tree, &pi).len())
    });
    group.finish();
}

criterion_group!(benches, bench_descendants_index, bench_descendants_eval);
criterion_main!(benches);
