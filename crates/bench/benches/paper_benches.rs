//! Criterion benchmarks mirroring the paper's evaluation:
//!
//! * `table1_synthesis/*` — synthesis latency per output-column category (Table 1's
//!   median/average synthesis-time columns);
//! * `table2_migration/*` — per-dataset single-table synthesis plus execution on a
//!   scaled document (the components of Table 2's timing columns);
//! * `execution_scaling/*` — execution time vs. document size for the motivating
//!   example (§7.1 performance paragraph / §2 claim);
//! * `ablation/*` — the E7 design-choice ablations: optimized join execution vs naive
//!   cross-product, exact ILP cover vs greedy cover, and DFA-based column learning vs
//!   blind enumeration.
//!
//! These benches favour small sample counts: the quantities of interest are
//! milliseconds-to-seconds, and the bin harnesses produce the full paper-style tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mitra_bench::table1_config;
use mitra_datagen::corpus::Category;
use mitra_datagen::datasets::{dataset_synth_config, dblp, yelp};
use mitra_datagen::{generate_corpus, social};
use mitra_dsl::eval::eval_program;
use mitra_synth::baseline::{
    enumerate_column_extractors_blind, learn_transformation_baseline, EnumerationStats,
};
use mitra_synth::column::{learn_column_extractors, ColumnLearnConfig};
use mitra_synth::exec::execute;
use mitra_synth::predicate::{learn_predicate, PredicateLearnConfig};
use mitra_synth::synthesize::{learn_transformation, Example, SynthConfig};
use mitra_synth::universe::UniverseConfig;
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

/// Table 1: synthesis latency, one representative task per category.
fn bench_table1_synthesis(c: &mut Criterion) {
    let tasks = generate_corpus();
    let config = table1_config();
    let mut group = c.benchmark_group("table1_synthesis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for cat in [
        Category::AtMostTwo,
        Category::Three,
        Category::Four,
        Category::FivePlus,
    ] {
        let task = tasks
            .iter()
            .find(|t| t.category == cat && t.expressible)
            .expect("task exists");
        group.bench_with_input(BenchmarkId::new("columns", cat.label()), task, |b, task| {
            b.iter(|| {
                learn_transformation(std::slice::from_ref(&task.example), &config)
                    .expect("synthesis succeeds")
            })
        });
    }
    group.finish();
}

/// Table 2: per-dataset single-table synthesis and scaled execution.
fn bench_table2_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_migration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));

    // Synthesis component: one representative table per dataset format.
    let dblp_spec = dblp();
    let (dblp_sample, dblp_tables) = dblp_spec.generate(2);
    let dblp_example = Example::new(dblp_sample, dblp_tables["phdthesis"].clone());
    group.bench_function("synthesize/dblp_phdthesis", |b| {
        b.iter(|| {
            learn_transformation(std::slice::from_ref(&dblp_example), &dataset_synth_config())
                .expect("synthesis")
        })
    });

    let yelp_spec = yelp();
    let (yelp_sample, yelp_tables) = yelp_spec.generate(2);
    let yelp_example = Example::new(yelp_sample, yelp_tables["business_category"].clone());
    group.bench_function("synthesize/yelp_business_category", |b| {
        b.iter(|| {
            learn_transformation(std::slice::from_ref(&yelp_example), &dataset_synth_config())
                .expect("synthesis")
        })
    });

    // Execution component: run the synthesized program over a scaled document.
    let program =
        learn_transformation(std::slice::from_ref(&dblp_example), &dataset_synth_config())
            .expect("synthesis")
            .program;
    let (big, _) = dblp_spec.generate(200);
    group.bench_function("execute/dblp_phdthesis_x200", |b| {
        b.iter(|| execute(&big, &program))
    });
    group.finish();
}

/// §7.1 / §2: execution time of the motivating-example program vs document size.
fn bench_execution_scaling(c: &mut Criterion) {
    let synthesis = learn_transformation(&[social::training_example()], &SynthConfig::default())
        .expect("synthesis");
    let mut group = c.benchmark_group("execution_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for elements in [1_000usize, 10_000] {
        let doc = social::social_network_with_elements(elements, 2);
        group.bench_with_input(BenchmarkId::new("elements", elements), &doc, |b, doc| {
            b.iter(|| execute(doc, &synthesis.program))
        });
    }
    group.finish();
}

/// E7 ablations.
fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));

    // (a) optimized join execution vs naive cross-product semantics.
    let synthesis = learn_transformation(&[social::training_example()], &SynthConfig::default())
        .expect("synthesis");
    let doc = social::social_network(80, 3);
    group.bench_function("execution/optimized_join", |b| {
        b.iter(|| execute(&doc, &synthesis.program))
    });
    group.bench_function("execution/naive_cross_product", |b| {
        b.iter(|| eval_program(&doc, &synthesis.program))
    });

    // (b) exact (ILP-equivalent) predicate cover vs greedy cover.
    let example = social::training_example();
    let psi = synthesis.program.extractor.clone();
    let exact_cfg = PredicateLearnConfig {
        universe: UniverseConfig::default(),
        exact_cover: true,
        ..Default::default()
    };
    let greedy_cfg = PredicateLearnConfig {
        exact_cover: false,
        ..exact_cfg
    };
    group.bench_function("predicate_cover/exact", |b| {
        b.iter(|| learn_predicate(std::slice::from_ref(&example), &psi, &exact_cfg))
    });
    group.bench_function("predicate_cover/greedy", |b| {
        b.iter(|| learn_predicate(std::slice::from_ref(&example), &psi, &greedy_cfg))
    });

    // (c) DFA-based column learning vs blind enumeration, plus the end-to-end baseline.
    let col_config = ColumnLearnConfig::default();
    group.bench_function("column_learning/dfa", |b| {
        b.iter(|| learn_column_extractors(std::slice::from_ref(&example), 0, &col_config))
    });
    group.bench_function("column_learning/blind_enumeration", |b| {
        b.iter(|| {
            let mut stats = EnumerationStats::default();
            enumerate_column_extractors_blind(std::slice::from_ref(&example), 0, 4, 16, &mut stats)
        })
    });
    group.bench_function("end_to_end/baseline_synthesizer", |b| {
        b.iter(|| {
            learn_transformation_baseline(std::slice::from_ref(&example), &SynthConfig::default())
                .expect("baseline synthesis")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_synthesis,
    bench_table2_migration,
    bench_execution_scaling,
    bench_ablation
);
criterion_main!(benches);

// Silence the unused helper warning if criterion's macro shape changes.
#[allow(dead_code)]
fn _keep(c: &mut Criterion) {
    configure(c);
}
