//! Small builders over [`mitra_hdt::JsonValue`] for the benchmark binaries' `--json`
//! mode.  The hdt crate already owns a full JSON model and serializer (pretty and
//! compact), so the harness only adds convenience constructors; there is no second
//! serializer to keep in sync.

pub use mitra_hdt::JsonValue;

/// An object from `(key, value)` pairs, preserving insertion order.
pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A string value.
pub fn s(v: impl Into<String>) -> JsonValue {
    JsonValue::String(v.into())
}

/// An integer value (exact for |v| < 2^53, far beyond any harness quantity).
pub fn int(v: usize) -> JsonValue {
    JsonValue::Number(v as f64)
}

/// A float value (seconds, ratios).
pub fn num(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Number(v)
    } else {
        JsonValue::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_roundtrip_through_the_hdt_parser() {
        let doc = obj(vec![
            ("name", s("x")),
            ("n", int(3)),
            ("t", num(0.5)),
            ("flag", JsonValue::Bool(true)),
            ("inf", num(f64::INFINITY)),
            ("rows", JsonValue::Array(vec![int(1), int(2)])),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(
            text,
            "{\"name\":\"x\",\"n\":3,\"t\":0.5,\"flag\":true,\"inf\":null,\"rows\":[1,2]}"
        );
        assert_eq!(mitra_hdt::parse_json(&text).unwrap(), doc);
    }
}
