//! The descendants-heavy evaluation workload used to quantify the HDT index win.
//!
//! The pre-refactor `descendants_with_tag` walked the entire subtree per query; the
//! indexed version answers from the per-tag occurrence list with a binary search
//! (`O(log n + k)`).  The workload here is shaped like what the synthesizer's DFA
//! construction and the evaluator actually do: many `descendants` queries for a
//! *selective* tag issued against interior nodes of a large document.  Both
//! implementations are exercised through public `Hdt` API so the comparison stays
//! honest: [`mitra_hdt::Hdt::descendants_with_tag_naive`] is the pre-refactor
//! traversal, kept as the reference implementation.

use mitra_hdt::{Hdt, NodeId, TagId};
use std::time::Instant;

/// Builds the benchmark corpus: `root` → `sections` sections → `items` items each,
/// every item carrying `name`/`value` leaves and every 50th item an extra rare
/// `anchor` leaf.  With the defaults this is a wide, shallow document whose
/// `descendants(·, anchor)` queries are highly selective — exactly the case where a
/// subtree walk wastes the most work.
pub fn corpus(sections: usize, items: usize) -> Hdt {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    for s in 0..sections {
        let section = tree.add_child(root, "section", None);
        for i in 0..items {
            let item = tree.add_child(section, "item", None);
            tree.add_child(item, "name", Some(format!("item-{s}-{i}")));
            tree.add_child(item, "value", Some((s * items + i).to_string()));
            if i % 50 == 0 {
                tree.add_child(item, "anchor", Some(format!("a{s}")));
            }
        }
    }
    tree
}

/// The query mix: for every section, `descendants(section, anchor)` and
/// `descendants(section, value)`, plus one whole-document `descendants(root, anchor)`.
pub fn queries(tree: &Hdt) -> Vec<(NodeId, TagId)> {
    let anchor: TagId = "anchor".into();
    let value: TagId = "value".into();
    let mut out = Vec::new();
    for &section in tree.children_with_tag(tree.root(), "section") {
        out.push((section, anchor));
        out.push((section, value));
    }
    out.push((tree.root(), anchor));
    out
}

/// Runs the query mix through the indexed range-scan implementation, returning the
/// total number of hits (used to keep the optimizer from discarding the work and to
/// cross-check both implementations return the same answer).
pub fn run_indexed(tree: &Hdt, queries: &[(NodeId, TagId)]) -> usize {
    queries
        .iter()
        .map(|(n, t)| tree.descendants_with_tag(*n, *t).len())
        .sum()
}

/// Runs the query mix through the pre-refactor full-subtree walk.
pub fn run_naive(tree: &Hdt, queries: &[(NodeId, TagId)]) -> usize {
    queries
        .iter()
        .map(|(n, t)| tree.descendants_with_tag_naive(*n, *t).len())
        .sum()
}

/// One measured comparison of the two implementations.
#[derive(Debug, Clone)]
pub struct DescendMeasurement {
    /// Nodes in the corpus.
    pub nodes: usize,
    /// Queries per repetition.
    pub queries: usize,
    /// Total hits per repetition (identical for both implementations).
    pub hits: usize,
    /// Best-of-N wall-clock seconds for the naive subtree walk.
    pub naive_secs: f64,
    /// Best-of-N wall-clock seconds for the indexed range scan.
    pub indexed_secs: f64,
}

impl DescendMeasurement {
    /// naive / indexed.
    pub fn speedup(&self) -> f64 {
        if self.indexed_secs > 0.0 {
            self.naive_secs / self.indexed_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Measures both implementations on the standard corpus, best-of-`repeats`.
///
/// The index is built *before* the timing loop (the query-construction and
/// cross-check steps touch it), so both numbers are steady-state query costs.  The
/// one-time index build is measured separately by the `index_build` case of
/// `benches/descendants_bench.rs`.
pub fn measure(sections: usize, items: usize, repeats: usize) -> DescendMeasurement {
    let tree = corpus(sections, items);
    let qs = queries(&tree);
    let hits_indexed = run_indexed(&tree, &qs);
    let hits_naive = run_naive(&tree, &qs);
    assert_eq!(
        hits_indexed, hits_naive,
        "indexed and naive descendants disagree"
    );

    let mut naive_secs = f64::INFINITY;
    let mut indexed_secs = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        std::hint::black_box(run_naive(&tree, &qs));
        naive_secs = naive_secs.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        std::hint::black_box(run_indexed(&tree, &qs));
        indexed_secs = indexed_secs.min(t.elapsed().as_secs_f64());
    }

    DescendMeasurement {
        nodes: tree.len(),
        queries: qs.len(),
        hits: hits_indexed,
        naive_secs,
        indexed_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_expected_shape() {
        let t = corpus(10, 100);
        assert_eq!(t.children_with_tag(t.root(), "section").len(), 10);
        // 10 sections * (1 section + 100 items * 2 leaves + 100 items) + anchors + root
        assert!(t.len() > 3_000);
        t.validate().unwrap();
    }

    #[test]
    fn implementations_agree_on_the_workload() {
        let t = corpus(5, 60);
        let qs = queries(&t);
        assert_eq!(run_indexed(&t, &qs), run_naive(&t, &qs));
        assert!(run_indexed(&t, &qs) > 0);
    }

    #[test]
    fn measure_reports_consistent_counts() {
        let m = measure(4, 50, 2);
        assert!(m.nodes > 0);
        assert!(m.queries > 0);
        assert!(m.hits > 0);
        assert!(m.naive_secs >= 0.0 && m.indexed_secs >= 0.0);
    }
}
