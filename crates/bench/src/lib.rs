//! # mitra-bench — the evaluation harness
//!
//! One regenerating target per table/figure of the paper's evaluation (see the
//! experiment index in DESIGN.md):
//!
//! * `cargo run -p mitra-bench --release --bin table1` — Table 1 (the 98-task corpus):
//!   per-category solved counts, median/average synthesis time, example sizes,
//!   predicate counts and LOC of the emitted code;
//! * `cargo run -p mitra-bench --release --bin table2` — Table 2 (full-database
//!   migration of the four dataset simulators): per-dataset table/column counts,
//!   synthesis and execution times, row counts;
//! * `cargo run -p mitra-bench --release --bin scalability` — the §7.1 performance
//!   paragraph and §2 claim: execution time of synthesized programs against document
//!   size;
//! * `cargo bench -p mitra-bench` — Criterion micro-benchmarks (synthesis latency per
//!   category, execution scaling, and the E7 ablations).
//!
//! The library part of this crate contains the shared measurement helpers so the bins
//! and the Criterion benches report identical quantities.

use mitra_codegen::{generate, Backend};
use mitra_datagen::corpus::{DocFormat, Task};
use mitra_synth::synthesize::{learn_transformation, SynthConfig, SynthProfile, Synthesis};
use std::time::Duration;

pub mod corpus_bench;
pub mod descend;
pub mod json;
pub mod table2;

/// Result of running the synthesizer on one corpus task.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The task's id.
    pub id: usize,
    /// The task's name.
    pub name: String,
    /// Format of the input document.
    pub format: DocFormat,
    /// Whether a program consistent with the example was found.
    pub solved: bool,
    /// Synthesis wall-clock time.
    pub time: Duration,
    /// Elements in the input example.
    pub elements: usize,
    /// Rows in the output example.
    pub rows: usize,
    /// Number of atomic predicates in the synthesized program (0 when unsolved).
    pub predicates: usize,
    /// Lines of code of the emitted artifact (0 when unsolved).
    pub loc: usize,
    /// True when DFA construction hit a limit for this task: its search space was
    /// silently under-explored and its numbers must be read accordingly.
    pub truncated: bool,
    /// Worker threads used by the synthesizer.
    pub threads: usize,
    /// Per-phase synthesis profile (default-zero when unsolved).
    pub profile: SynthProfile,
}

/// Runs the synthesizer on one corpus task and gathers the Table 1 statistics.
pub fn run_task(task: &Task, config: &SynthConfig) -> TaskResult {
    let start = std::time::Instant::now();
    let outcome: Result<Synthesis, _> =
        learn_transformation(std::slice::from_ref(&task.example), config);
    let time = start.elapsed();
    match outcome {
        Ok(synthesis) => {
            let backend = match task.format {
                DocFormat::Xml => Backend::Xslt,
                DocFormat::Json => Backend::JavaScript,
            };
            let artifact = generate(&synthesis.program, backend);
            TaskResult {
                id: task.id,
                name: task.name.clone(),
                format: task.format,
                solved: true,
                time,
                elements: task.element_count(),
                rows: task.row_count(),
                predicates: synthesis.cost.atoms,
                loc: artifact.loc(),
                truncated: synthesis.truncated,
                threads: synthesis.threads_used,
                profile: synthesis.profile,
            }
        }
        Err(_) => TaskResult {
            id: task.id,
            name: task.name.clone(),
            format: task.format,
            solved: false,
            time,
            elements: task.element_count(),
            rows: task.row_count(),
            predicates: 0,
            loc: 0,
            truncated: false,
            threads: mitra_pool::resolve(config.threads),
            profile: SynthProfile::default(),
        },
    }
}

/// The per-phase synthesis profile as a JSON object (seconds and counts), shared by
/// every `--json` bench output so profile fields stay byte-compatible across bins.
pub fn profile_to_json(p: &SynthProfile) -> json::JsonValue {
    json::obj(vec![
        ("dfa_build_secs", json::num(p.dfa_build.as_secs_f64())),
        (
            "dfa_intersect_secs",
            json::num(p.dfa_intersect.as_secs_f64()),
        ),
        (
            "dfa_enumerate_secs",
            json::num(p.dfa_enumerate.as_secs_f64()),
        ),
        (
            "predicate_learn_secs",
            json::num(p.predicate_learn.as_secs_f64()),
        ),
        ("validate_secs", json::num(p.validate.as_secs_f64())),
        ("candidates_examined", json::int(p.candidates_examined)),
        ("candidates_pruned", json::int(p.candidates_pruned)),
    ])
}

/// A [`mitra_trace::MetricsSnapshot`] (usually a [`delta`] isolating one measured
/// region) as a JSON object: counters by name, histogram summaries by name, and
/// per-worker pool utilization.  Embedded in every `--json` bench output so cache
/// hit rates, frontier depth and worker busy/idle time are attributable per run.
///
/// [`delta`]: mitra_trace::MetricsSnapshot::delta
pub fn metrics_to_json(m: &mitra_trace::MetricsSnapshot) -> json::JsonValue {
    let counters = json::JsonValue::Object(
        m.counters
            .iter()
            .map(|&(name, v)| (name.to_string(), json::int(v as usize)))
            .collect(),
    );
    let histograms = json::JsonValue::Object(
        m.histograms
            .iter()
            .map(|&(name, h)| {
                (
                    name.to_string(),
                    json::obj(vec![
                        ("count", json::int(h.count as usize)),
                        ("sum", json::int(h.sum as usize)),
                        ("min", json::int(h.min as usize)),
                        ("max", json::int(h.max as usize)),
                        ("mean", json::num(h.mean())),
                    ]),
                )
            })
            .collect(),
    );
    let workers = json::JsonValue::Array(
        m.workers
            .iter()
            .map(|w| {
                let busy = w.busy_ns as f64 / 1e9;
                let idle = w.idle_ns as f64 / 1e9;
                json::obj(vec![
                    ("slot", json::int(w.slot)),
                    ("busy_secs", json::num(busy)),
                    ("idle_secs", json::num(idle)),
                    ("pulls", json::int(w.pulls as usize)),
                    (
                        "utilization",
                        json::num(if busy + idle > 0.0 {
                            busy / (busy + idle)
                        } else {
                            0.0
                        }),
                    ),
                ])
            })
            .collect(),
    );
    json::obj(vec![
        ("counters", counters),
        ("histograms", histograms),
        ("pool_workers", workers),
    ])
}

/// The per-table execution profile as a JSON object — the execution-side sibling of
/// [`profile_to_json`].
pub fn execution_profile_to_json(p: &mitra_migrate::ExecutionProfile) -> json::JsonValue {
    json::obj(vec![
        ("wall_secs", json::num(p.wall.as_secs_f64())),
        (
            "tables",
            json::JsonValue::Array(
                p.tables
                    .iter()
                    .map(|t| {
                        json::obj(vec![
                            ("table", json::s(&t.table)),
                            ("wall_secs", json::num(t.wall.as_secs_f64())),
                            ("chunks", json::int(t.chunks)),
                            ("tuples_considered", json::int(t.tuples_considered)),
                            ("rows_emitted", json::int(t.rows_emitted)),
                            ("interval_join_steps", json::int(t.interval_join_steps)),
                            ("hash_join_steps", json::int(t.hash_join_steps)),
                            ("cross_product_steps", json::int(t.cross_product_steps)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Median of a slice of f64 values (0.0 for an empty slice).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Mean of a slice of f64 values (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The synthesis configuration used by the Table 1 harness (the default configuration,
/// as an end user would run it).
pub fn table1_config() -> SynthConfig {
    SynthConfig {
        timeout: Some(Duration::from_secs(60)),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_datagen::generate_corpus;

    #[test]
    fn median_and_mean() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn run_task_reports_solved_and_unsolved() {
        let tasks = generate_corpus();
        let config = table1_config();
        let easy = tasks.iter().find(|t| t.expressible).unwrap();
        let hard = tasks.iter().find(|t| !t.expressible).unwrap();
        let solved = run_task(easy, &config);
        assert!(solved.solved);
        assert!(solved.loc > 0);
        let unsolved = run_task(hard, &config);
        assert!(!unsolved.solved);
        assert_eq!(unsolved.predicates, 0);
    }
}
