//! Shared measurement for the Table 2 harness (full-database migration of the four
//! dataset simulators), used by the `table2` binary, its `--json` mode and the
//! `bench_smoke` baseline writer.

use crate::json::{int, num, obj, s, JsonValue};
use mitra_datagen::datasets::all_datasets;

/// One dataset's migration measurement (one row of Table 2).
#[derive(Debug, Clone)]
pub struct MigrationRow {
    /// Dataset name (dblp, imdb, mondial, yelp).
    pub name: String,
    /// Input format (XML/JSON).
    pub format: String,
    /// Internal elements in the execution document.
    pub elements: usize,
    /// Tables in the target schema.
    pub tables: usize,
    /// Total columns across tables.
    pub columns: usize,
    /// Total synthesis time in seconds.
    pub synth_total_secs: f64,
    /// Rows migrated across all tables.
    pub rows: usize,
    /// Total execution time in seconds.
    pub exec_total_secs: f64,
    /// Constraint violations in the migrated database (0 on success).
    pub violations: usize,
    /// Error message when the migration failed outright.
    pub error: Option<String>,
}

/// Runs every dataset simulator's migration plan at the given scale.
pub fn run_table2(scale: usize) -> Vec<MigrationRow> {
    all_datasets()
        .into_iter()
        .map(|spec| {
            let plan = spec.migration_plan();
            let (document, _expected) = spec.generate(scale);
            let elements = document.ids().filter(|id| !document.is_leaf(*id)).count();
            match plan.run(&document) {
                Ok(report) => MigrationRow {
                    name: spec.name.to_string(),
                    format: spec.format.to_string(),
                    elements,
                    tables: spec.table_count(),
                    columns: spec.schema().total_columns(),
                    synth_total_secs: report.total_synthesis_time().as_secs_f64(),
                    rows: report.total_rows(),
                    exec_total_secs: report.total_execution_time().as_secs_f64(),
                    violations: report.violations,
                    error: None,
                },
                Err(e) => MigrationRow {
                    name: spec.name.to_string(),
                    format: spec.format.to_string(),
                    elements,
                    tables: spec.table_count(),
                    columns: spec.schema().total_columns(),
                    synth_total_secs: 0.0,
                    rows: 0,
                    exec_total_secs: 0.0,
                    violations: 0,
                    error: Some(e.to_string()),
                },
            }
        })
        .collect()
}

/// The rows as a JSON array value (insertion-ordered fields).
pub fn rows_to_json_value(rows: &[MigrationRow]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|r| {
                let mut fields = vec![
                    ("name", s(&r.name)),
                    ("format", s(&r.format)),
                    ("elements", int(r.elements)),
                    ("tables", int(r.tables)),
                    ("columns", int(r.columns)),
                    ("synth_total_secs", num(r.synth_total_secs)),
                    ("rows", int(r.rows)),
                    ("exec_total_secs", num(r.exec_total_secs)),
                    ("violations", int(r.violations)),
                ];
                if let Some(e) = &r.error {
                    fields.push(("error", s(e)));
                }
                obj(fields)
            })
            .collect(),
    )
}

/// The rows as compact JSON text.
pub fn rows_to_json(rows: &[MigrationRow]) -> String {
    rows_to_json_value(rows).to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end `run_table2` is exercised by the release binaries (`table2`,
    // `bench_smoke`) and the CI bench-smoke job; running dataset synthesis under the
    // debug profile is far too slow for the unit suite, so only the serialization is
    // tested here.
    #[test]
    fn rows_serialize_with_stable_fields() {
        let rows = vec![
            MigrationRow {
                name: "dblp".into(),
                format: "XML".into(),
                elements: 276,
                tables: 9,
                columns: 39,
                synth_total_secs: 3.5,
                rows: 275,
                exec_total_secs: 0.001,
                violations: 0,
                error: None,
            },
            MigrationRow {
                name: "broken".into(),
                format: "JSON".into(),
                elements: 0,
                tables: 1,
                columns: 2,
                synth_total_secs: 0.0,
                rows: 0,
                exec_total_secs: 0.0,
                violations: 0,
                error: Some("synthesis failed".into()),
            },
        ];
        let json = rows_to_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"dblp\""));
        assert!(json.contains("\"rows\":275"));
        assert!(json.contains("\"error\":\"synthesis failed\""));
        // The emitted document round-trips through the hdt parser.
        assert_eq!(
            mitra_hdt::parse_json(&json).expect("valid JSON"),
            rows_to_json_value(&rows)
        );
    }
}
