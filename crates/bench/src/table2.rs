//! Shared measurement for the Table 2 harness (full-database migration of the four
//! dataset simulators), used by the `table2` binary, its `--json` mode and the
//! `bench_smoke` baseline writer.

use crate::json::{int, num, obj, s, JsonValue};
use crate::{execution_profile_to_json, metrics_to_json, profile_to_json};
use mitra_datagen::datasets::{all_datasets, DatasetSpec};
use mitra_migrate::ExecutionProfile;
use mitra_synth::budget::Budget;
use mitra_synth::synthesize::SynthProfile;
use mitra_trace::MetricsSnapshot;

/// One dataset's migration measurement (one row of Table 2).
#[derive(Debug, Clone)]
pub struct MigrationRow {
    /// Dataset name (dblp, imdb, mondial, yelp).
    pub name: String,
    /// Input format (XML/JSON).
    pub format: String,
    /// Internal elements in the execution document.
    pub elements: usize,
    /// Tables in the target schema.
    pub tables: usize,
    /// Total columns across tables.
    pub columns: usize,
    /// Wall-clock time of the synthesis phase in seconds.  With one worker this
    /// equals the per-table sum; with several it is what the user actually waits.
    pub synth_total_secs: f64,
    /// Sum of per-table synthesis times in seconds (CPU-ish time; overlaps under
    /// parallelism, so it can exceed `synth_total_secs`).
    pub synth_cpu_secs: f64,
    /// Rows migrated across all tables.
    pub rows: usize,
    /// Total execution time in seconds.
    pub exec_total_secs: f64,
    /// Constraint violations in the migrated database (0 on success).
    pub violations: usize,
    /// Worker threads the migration plan was run with (after resolution).
    pub threads: usize,
    /// Pretty-printed synthesized programs in table order — not serialized; used by
    /// `bench_smoke` to assert thread-count determinism.
    pub programs: Vec<String>,
    /// Field-wise sum of the per-table synthesis profiles.
    pub profile: SynthProfile,
    /// Per-table execution breakdown (wall, chunk fan-out, tuple counts).
    pub execution: ExecutionProfile,
    /// Metrics recorded during this dataset's run (a [`MetricsSnapshot::delta`]
    /// against the registry state just before it): cache hit/miss/insert counters,
    /// frontier-depth histograms, per-worker pool utilization.  Empty when the
    /// trace mode is `off`.
    pub metrics: MetricsSnapshot,
    /// Error message when the migration failed outright.
    pub error: Option<String>,
}

/// Runs every dataset simulator's migration plan at the given scale, on the
/// process-global thread count.
pub fn run_table2(scale: usize) -> Vec<MigrationRow> {
    run_table2_with(scale, 0)
}

/// Runs every dataset simulator's migration plan at the given scale and worker
/// thread count (`0` = the process-global setting, `1` = sequential).
pub fn run_table2_with(scale: usize, threads: usize) -> Vec<MigrationRow> {
    let resolved = mitra_pool::resolve(threads);
    all_datasets()
        .into_iter()
        .map(|spec| run_dataset_row(&spec, scale, resolved, Budget::UNLIMITED))
        .collect()
}

/// Runs a single dataset's migration plan by (case-insensitive) name — the
/// overhead-measurement and trace-artifact paths of `bench_smoke` use this to
/// re-run MONDIAL alone instead of the whole suite.
pub fn run_single_dataset(name: &str, scale: usize, threads: usize) -> Option<MigrationRow> {
    run_single_dataset_budgeted(name, scale, threads, Budget::UNLIMITED)
}

/// Like [`run_single_dataset`] but under an explicit fuel budget — the
/// budget-overhead gate runs MONDIAL with a generous (never-binding) budget and
/// compares against the unlimited run to price the budget checks themselves.
pub fn run_single_dataset_budgeted(
    name: &str,
    scale: usize,
    threads: usize,
    budget: Budget,
) -> Option<MigrationRow> {
    let resolved = mitra_pool::resolve(threads);
    all_datasets()
        .into_iter()
        .find(|spec| spec.name.eq_ignore_ascii_case(name))
        .map(|spec| run_dataset_row(&spec, scale, resolved, budget))
}

fn run_dataset_row(
    spec: &DatasetSpec,
    scale: usize,
    resolved: usize,
    budget: Budget,
) -> MigrationRow {
    let mut plan = spec.migration_plan();
    plan.synth_config.threads = resolved;
    plan.synth_config.budget = budget;
    // Measure complete synthesis: a wall-clock timeout firing mid-search
    // would change *which candidates get examined* depending on machine
    // speed and thread count, making both the timing columns and the
    // cross-thread-count determinism check meaningless on slow runners.
    plan.synth_config.timeout = None;
    let (document, _expected) = spec.generate(scale);
    let elements = document.ids().filter(|id| !document.is_leaf(*id)).count();
    // The registry is process-global and cumulative; the delta against this
    // snapshot attributes metrics to this dataset's run alone.
    let metrics_before = mitra_trace::snapshot();
    match plan.run(&document) {
        Ok(report) => MigrationRow {
            name: spec.name.to_string(),
            format: spec.format.to_string(),
            elements,
            tables: spec.table_count(),
            columns: spec.schema().total_columns(),
            synth_total_secs: report.synthesis_wall.as_secs_f64(),
            synth_cpu_secs: report.total_synthesis_time().as_secs_f64(),
            rows: report.total_rows(),
            exec_total_secs: report.total_execution_time().as_secs_f64(),
            violations: report.violations,
            threads: resolved,
            programs: report.programs().into_iter().map(str::to_string).collect(),
            profile: report.synthesis_profile(),
            execution: report.execution_profile(),
            metrics: mitra_trace::snapshot().delta(&metrics_before),
            error: None,
        },
        Err(e) => MigrationRow {
            name: spec.name.to_string(),
            format: spec.format.to_string(),
            elements,
            tables: spec.table_count(),
            columns: spec.schema().total_columns(),
            synth_total_secs: 0.0,
            synth_cpu_secs: 0.0,
            rows: 0,
            exec_total_secs: 0.0,
            violations: 0,
            threads: resolved,
            programs: Vec::new(),
            profile: SynthProfile::default(),
            execution: ExecutionProfile::default(),
            metrics: mitra_trace::snapshot().delta(&metrics_before),
            error: Some(e.to_string()),
        },
    }
}

/// The rows as a JSON array value (insertion-ordered fields).
pub fn rows_to_json_value(rows: &[MigrationRow]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|r| {
                let mut fields = vec![
                    ("name", s(&r.name)),
                    ("format", s(&r.format)),
                    ("elements", int(r.elements)),
                    ("tables", int(r.tables)),
                    ("columns", int(r.columns)),
                    ("synth_total_secs", num(r.synth_total_secs)),
                    ("synth_cpu_secs", num(r.synth_cpu_secs)),
                    ("rows", int(r.rows)),
                    ("exec_total_secs", num(r.exec_total_secs)),
                    ("violations", int(r.violations)),
                    ("threads", int(r.threads)),
                    ("profile", profile_to_json(&r.profile)),
                    ("execution", execution_profile_to_json(&r.execution)),
                    ("metrics", metrics_to_json(&r.metrics)),
                ];
                if let Some(e) = &r.error {
                    fields.push(("error", s(e)));
                }
                obj(fields)
            })
            .collect(),
    )
}

/// The rows as compact JSON text.
pub fn rows_to_json(rows: &[MigrationRow]) -> String {
    rows_to_json_value(rows).to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end `run_table2` is exercised by the release binaries (`table2`,
    // `bench_smoke`) and the CI bench-smoke job; running dataset synthesis under the
    // debug profile is far too slow for the unit suite, so only the serialization is
    // tested here.
    #[test]
    fn rows_serialize_with_stable_fields() {
        let rows = vec![
            MigrationRow {
                name: "dblp".into(),
                format: "XML".into(),
                elements: 276,
                tables: 9,
                columns: 39,
                synth_total_secs: 3.5,
                synth_cpu_secs: 3.5,
                rows: 275,
                exec_total_secs: 0.001,
                violations: 0,
                threads: 1,
                programs: vec!["filter(...)".into()],
                profile: SynthProfile::default(),
                execution: ExecutionProfile {
                    tables: vec![mitra_migrate::TableExecProfile {
                        table: "person".into(),
                        wall: std::time::Duration::from_millis(1),
                        chunks: 1,
                        tuples_considered: 300,
                        rows_emitted: 275,
                        interval_join_steps: 0,
                        hash_join_steps: 1,
                        cross_product_steps: 0,
                    }],
                    wall: std::time::Duration::from_millis(1),
                },
                metrics: MetricsSnapshot::default(),
                error: None,
            },
            MigrationRow {
                name: "broken".into(),
                format: "JSON".into(),
                elements: 0,
                tables: 1,
                columns: 2,
                synth_total_secs: 0.0,
                synth_cpu_secs: 0.0,
                rows: 0,
                exec_total_secs: 0.0,
                violations: 0,
                threads: 1,
                programs: Vec::new(),
                profile: SynthProfile::default(),
                execution: ExecutionProfile::default(),
                metrics: MetricsSnapshot::default(),
                error: Some("synthesis failed".into()),
            },
        ];
        let json = rows_to_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"dblp\""));
        assert!(json.contains("\"rows\":275"));
        assert!(json.contains("\"threads\":1"));
        assert!(json.contains("\"synth_cpu_secs\":3.5"));
        assert!(json.contains("\"profile\":{\"dfa_build_secs\":0"));
        assert!(json.contains("\"candidates_pruned\":0"));
        // The execution profile and metrics block ride along in every row.
        assert!(json.contains("\"execution\":{\"wall_secs\":0.001"));
        assert!(json.contains("\"table\":\"person\""));
        assert!(json.contains("\"chunks\":1"));
        assert!(json.contains("\"tuples_considered\":300"));
        assert!(json.contains("\"metrics\":{\"counters\":{}"));
        assert!(json.contains("\"error\":\"synthesis failed\""));
        // Programs are an in-process determinism probe, not part of the JSON.
        assert!(!json.contains("filter(...)"));
        // The emitted document round-trips through the hdt parser.
        assert_eq!(
            mitra_hdt::parse_json(&json).expect("valid JSON"),
            rows_to_json_value(&rows)
        );
    }
}
