//! Corpus-service smoke harness (DESIGN.md §12).
//!
//! Drives the checkpointed corpus migration service end to end on a seeded
//! mixer corpus and checks every robustness contract the service makes:
//!
//! * **thread-count determinism** — the artifacts (tables, failure ledger,
//!   summary) of a 1-thread and a 4-thread run are byte-identical;
//! * **crash-resume determinism** — a run killed by an injected shard panic
//!   (`panic:corpus.shard:N`) and then resumed produces artifacts
//!   byte-identical to an uninterrupted run;
//! * **exact quarantine** — precisely the seeded malformed documents land in
//!   the failure ledger, every one with a typed error, and the surviving rows
//!   have zero constraint violations;
//! * **metrics surfacing** — the `corpus.*` and `pool.panics_caught` counters
//!   observe the run (the injected panic is caught, not fatal).
//!
//! Used by the `corpus_smoke` CI binary and embedded as the `corpus` block of
//! `BENCH_synthesis.json` by `bench_smoke`.

use crate::json::{int, num, obj, JsonValue};
use mitra_datagen::fuzz::{mixed_corpus, mixer_job, CorpusMix};
use mitra_migrate::corpus::{resume, run, CorpusError, CorpusJob, CorpusReport};
use mitra_trace::fault::{set_fault, FaultSpec};
use std::path::Path;
use std::time::Instant;

/// The measured corpus-service run and its pass/fail gates.
pub struct CorpusBench {
    /// Documents in the generated corpus.
    pub docs: usize,
    /// Documents the mixer corrupted (the expected quarantine set size).
    pub malformed_expected: usize,
    /// Documents the service actually quarantined.
    pub quarantined: usize,
    /// Escalating-budget retry attempts.
    pub retried: u64,
    /// Constraint violations in the assembled database (gate: 0).
    pub violations: usize,
    /// Total rows across tables.
    pub rows: usize,
    /// Shards in the corpus.
    pub shards: usize,
    /// Shards the resumed run replayed from the journal.
    pub resumed_shards: usize,
    /// Distinct shapes and synthesis calls (once per shape x oracle table).
    pub shapes: usize,
    /// `learn_transformation` invocations across the clean run.
    pub programs_synthesized: usize,
    /// Exactly the seeded malformed documents were quarantined, all typed.
    pub quarantine_exact: bool,
    /// 1-thread and 4-thread artifacts are byte-identical.
    pub threads_identical: bool,
    /// Crashed+resumed artifacts match the uninterrupted run byte for byte.
    pub resume_identical: bool,
    /// Documents migrated per second in the clean 4-thread run.
    pub docs_per_sec: f64,
    /// Rows emitted per second in the clean 4-thread run.
    pub rows_per_sec: f64,
    /// Counter deltas observed over the whole measurement, surfaced even when
    /// zero so the bench JSON always carries the full set.
    pub counters: Vec<(&'static str, u64)>,
}

/// The counters the harness surfaces into the bench JSON (satellite of the
/// corpus-service issue): worker-pool panic isolation plus the corpus
/// service's own quarantine / retry / resume activity.
pub const SURFACED_COUNTERS: [&str; 6] = [
    "pool.panics_caught",
    "corpus.docs",
    "corpus.quarantined",
    "corpus.retried",
    "corpus.resumed_shards",
    "corpus.programs_synthesized",
];

impl CorpusBench {
    /// True when every hard gate holds.
    pub fn passed(&self) -> bool {
        self.quarantine_exact
            && self.threads_identical
            && self.resume_identical
            && self.violations == 0
            && self.quarantined == self.malformed_expected
    }

    /// The `corpus` block of `BENCH_synthesis.json`.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("docs", int(self.docs)),
            ("malformed_expected", int(self.malformed_expected)),
            ("quarantined", int(self.quarantined)),
            ("retried", int(self.retried as usize)),
            ("violations", int(self.violations)),
            ("rows", int(self.rows)),
            ("shards", int(self.shards)),
            ("resumed_shards", int(self.resumed_shards)),
            ("shapes", int(self.shapes)),
            ("programs_synthesized", int(self.programs_synthesized)),
            ("quarantine_exact", JsonValue::Bool(self.quarantine_exact)),
            ("threads_identical", JsonValue::Bool(self.threads_identical)),
            ("resume_identical", JsonValue::Bool(self.resume_identical)),
            ("docs_per_sec", num(self.docs_per_sec)),
            ("rows_per_sec", num(self.rows_per_sec)),
            (
                "counters",
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), int(*v as usize)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The comparable artifacts of a finished run, as `(relative path, bytes)`.
fn artifacts(out_dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files = vec![
        "failure_ledger.jsonl".to_string(),
        "summary.json".to_string(),
    ];
    let mut tables: Vec<String> = std::fs::read_dir(out_dir.join("tables"))
        .expect("tables directory exists after a run")
        .map(|e| format!("tables/{}", e.unwrap().file_name().to_string_lossy()))
        .collect();
    tables.sort();
    files.extend(tables);
    files
        .into_iter()
        .map(|rel| {
            let bytes = std::fs::read(out_dir.join(&rel)).expect("artifact exists");
            (rel, bytes)
        })
        .collect()
}

fn job_with(threads: usize, shard_size: usize) -> CorpusJob {
    let mut job = mixer_job();
    job.config.threads = threads;
    job.config.shard_size = shard_size;
    job
}

/// Runs the full corpus-service measurement under `base` (a scratch directory
/// the caller owns; its `t1`/`t4`/`crash` subdirectories are overwritten).
///
/// Fault injection is process-global, so callers must not run concurrent
/// migrations while this executes.
pub fn measure(docs: usize, malformed_pct: u32, seed: u64, base: &Path) -> CorpusBench {
    let mix = CorpusMix {
        seed,
        docs,
        malformed_pct,
        promo_pct: 0,
    };
    let corpus = mixed_corpus(&mix);
    let shard_size = (docs / 8).max(1);
    let before = mitra_trace::snapshot();

    // Clean runs at 1 and 4 threads.
    let t1_dir = fresh_dir(base, "t1");
    let report_t1 = run(&job_with(1, shard_size), &corpus.text, &t1_dir).expect("1-thread run");
    let t4_dir = fresh_dir(base, "t4");
    let start = Instant::now();
    let report = run(&job_with(4, shard_size), &corpus.text, &t4_dir).expect("4-thread run");
    let clean_secs = start.elapsed().as_secs_f64().max(f64::EPSILON);
    let threads_identical = artifacts(&t1_dir) == artifacts(&t4_dir);
    assert_eq!(report_t1.summary_json(), report.summary_json());

    // Crash mid-corpus (injected shard-worker panic), then resume.
    let crash_dir = fresh_dir(base, "crash");
    let crash_shard = report.shards / 2;
    set_fault(FaultSpec::parse(&format!(
        "panic:corpus.shard:{crash_shard}"
    )));
    let interrupted = run(&job_with(4, shard_size), &corpus.text, &crash_dir);
    set_fault(None);
    assert!(
        matches!(interrupted, Err(CorpusError::ShardPanicked { .. })),
        "the injected shard panic must abort the run: {interrupted:?}"
    );
    let resumed = resume(&job_with(4, shard_size), &corpus.text, &crash_dir).expect("resume");
    let resume_identical = artifacts(&t4_dir) == artifacts(&crash_dir);

    let quarantine_exact = exact_quarantine(&report, &corpus.malformed);
    let after = mitra_trace::snapshot();
    let delta = after.delta(&before);
    let counters = SURFACED_COUNTERS
        .iter()
        .map(|&name| (name, delta.counter(name)))
        .collect();

    CorpusBench {
        docs,
        malformed_expected: corpus.malformed.len(),
        quarantined: report.quarantined.len(),
        retried: report.retried,
        violations: report.violations,
        rows: report.total_rows(),
        shards: report.shards,
        resumed_shards: resumed.resumed_shards,
        shapes: report.shapes,
        programs_synthesized: report.programs_synthesized,
        quarantine_exact,
        threads_identical,
        resume_identical,
        docs_per_sec: docs as f64 / clean_secs,
        rows_per_sec: report.total_rows() as f64 / clean_secs,
        counters,
    }
}

/// True when the quarantine ledger names exactly the seeded malformed
/// documents, in order, every one with a typed (non-panic) error.
fn exact_quarantine(report: &CorpusReport, expected: &[usize]) -> bool {
    let quarantined: Vec<usize> = report.quarantined.iter().map(|q| q.doc).collect();
    quarantined == expected
        && report
            .quarantined
            .iter()
            .all(|q| q.kind == mitra_migrate::corpus::FailureKind::Malformed)
}

fn fresh_dir(base: &Path, name: &str) -> std::path::PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch directory");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_bench_json_carries_every_surfaced_counter() {
        let bench = CorpusBench {
            docs: 10,
            malformed_expected: 1,
            quarantined: 1,
            retried: 0,
            violations: 0,
            rows: 40,
            shards: 2,
            resumed_shards: 1,
            shapes: 1,
            programs_synthesized: 2,
            quarantine_exact: true,
            threads_identical: true,
            resume_identical: true,
            docs_per_sec: 100.0,
            rows_per_sec: 400.0,
            counters: SURFACED_COUNTERS.iter().map(|&n| (n, 0)).collect(),
        };
        assert!(bench.passed());
        let text = bench.to_json().to_string_compact();
        for name in SURFACED_COUNTERS {
            assert!(text.contains(name), "{name} missing from {text}");
        }
        assert!(text.contains("\"docs_per_sec\""));
    }

    #[test]
    fn failed_gates_are_reported() {
        let bench = CorpusBench {
            docs: 10,
            malformed_expected: 2,
            quarantined: 1,
            retried: 0,
            violations: 1,
            rows: 0,
            shards: 2,
            resumed_shards: 0,
            shapes: 1,
            programs_synthesized: 2,
            quarantine_exact: false,
            threads_identical: true,
            resume_identical: true,
            docs_per_sec: 1.0,
            rows_per_sec: 0.0,
            counters: Vec::new(),
        };
        assert!(!bench.passed());
    }
}
