//! Regenerates Table 1 of the paper: synthesis results over the 98-task corpus,
//! grouped by input format and output column count.
//!
//! Run with: `cargo run -p mitra-bench --release --bin table1 [-- --json] [-- --limit N]
//! [-- --threads N]`
//!
//! * `--json` — emit one machine-readable JSON object on stdout instead of the
//!   human-readable table (used by the CI bench-smoke step and `bench_smoke`);
//! * `--limit N` — run only the first N corpus tasks (smoke runs);
//! * `--threads N` — synthesis worker threads (default: `MITRA_THREADS`, else all
//!   cores; results are identical at every value, only timings change).

use mitra_bench::json::{int, num, obj, s, JsonValue};
use mitra_bench::{mean, median, profile_to_json, run_task, table1_config, TaskResult};
use mitra_datagen::corpus::{Category, DocFormat};
use mitra_datagen::generate_corpus;

/// Renders per-task results plus aggregates (and the metrics recorded during the
/// run) as a JSON object.
pub fn results_to_json(
    results: &[(Category, TaskResult)],
    metrics: &mitra_trace::MetricsSnapshot,
) -> String {
    let tasks = JsonValue::Array(
        results
            .iter()
            .map(|(cat, r)| {
                obj(vec![
                    ("id", int(r.id)),
                    ("name", s(&r.name)),
                    ("format", s(format!("{:?}", r.format))),
                    ("category", s(cat.label())),
                    ("solved", JsonValue::Bool(r.solved)),
                    ("time_secs", num(r.time.as_secs_f64())),
                    ("elements", int(r.elements)),
                    ("rows", int(r.rows)),
                    ("predicates", int(r.predicates)),
                    ("loc", int(r.loc)),
                    ("truncated", JsonValue::Bool(r.truncated)),
                    ("profile", profile_to_json(&r.profile)),
                ])
            })
            .collect(),
    );
    let solved_times: Vec<f64> = results
        .iter()
        .filter(|(_, r)| r.solved)
        .map(|(_, r)| r.time.as_secs_f64())
        .collect();
    obj(vec![
        ("total", int(results.len())),
        (
            "solved",
            int(results.iter().filter(|(_, r)| r.solved).count()),
        ),
        ("median_time_secs", num(median(&solved_times))),
        ("mean_time_secs", num(mean(&solved_times))),
        (
            "truncated_tasks",
            int(results.iter().filter(|(_, r)| r.truncated).count()),
        ),
        (
            "threads",
            int(results.iter().map(|(_, r)| r.threads).max().unwrap_or(1)),
        ),
        ("profile", {
            let mut total = mitra_synth::SynthProfile::default();
            for (_, r) in results {
                total.merge(&r.profile);
            }
            profile_to_json(&total)
        }),
        ("metrics", mitra_bench::metrics_to_json(metrics)),
        ("tasks", tasks),
    ])
    .to_string_compact()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let limit = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());

    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);

    let mut tasks = generate_corpus();
    if let Some(n) = limit {
        tasks.truncate(n);
    }
    let mut config = table1_config();
    config.threads = threads;
    // Metrics are process-global and cumulative; the delta below attributes them to
    // this run alone.
    let metrics_before = mitra_trace::snapshot();
    eprintln!(
        "Running synthesis on {} corpus tasks ({} worker threads)...",
        tasks.len(),
        mitra_pool::resolve(threads)
    );
    let results: Vec<(Category, TaskResult)> = tasks
        .iter()
        .map(|task| {
            let r = run_task(task, &config);
            eprintln!(
                "  [{}] {:<24} {:>8.2?} {}",
                if r.solved { "ok " } else { "FAIL" },
                r.name,
                r.time,
                if task.expressible {
                    ""
                } else {
                    "(expected unsolved: outside DSL)"
                }
            );
            (task.category, r)
        })
        .collect();

    if as_json {
        let metrics = mitra_trace::snapshot().delta(&metrics_before);
        println!("{}", results_to_json(&results, &metrics));
        return;
    }

    println!("\nTable 1 — synthesis over the 98-task corpus (reproduction)\n");
    println!(
        "{:<6} {:<6} | {:>5} {:>7} | {:>10} {:>10} | {:>9} {:>9} {:>7} {:>7} | {:>6} {:>6}",
        "Format",
        "#Cols",
        "Total",
        "#Solved",
        "Median(s)",
        "Avg(s)",
        "ElemsMed",
        "ElemsAvg",
        "RowsMed",
        "RowsAvg",
        "#Preds",
        "LOC"
    );
    let categories = [
        Category::AtMostTwo,
        Category::Three,
        Category::Four,
        Category::FivePlus,
    ];
    for format in [DocFormat::Xml, DocFormat::Json] {
        for with_total in [false, true] {
            if with_total {
                print_row(
                    &format!("{format:?}"),
                    "Total",
                    results
                        .iter()
                        .filter(|(_, r)| r.format == format)
                        .map(|(_, r)| r),
                );
            } else {
                for cat in categories {
                    print_row(
                        &format!("{format:?}"),
                        cat.label(),
                        results
                            .iter()
                            .filter(|(c, r)| *c == cat && r.format == format)
                            .map(|(_, r)| r),
                    );
                }
            }
        }
    }
    print_row("Overall", "", results.iter().map(|(_, r)| r));
}

fn print_row<'a>(format: &str, cols: &str, rows: impl Iterator<Item = &'a TaskResult>) {
    let rows: Vec<&TaskResult> = rows.collect();
    if rows.is_empty() {
        return;
    }
    let total = rows.len();
    let solved = rows.iter().filter(|r| r.solved).count();
    let times: Vec<f64> = rows
        .iter()
        .filter(|r| r.solved)
        .map(|r| r.time.as_secs_f64())
        .collect();
    let elements: Vec<f64> = rows.iter().map(|r| r.elements as f64).collect();
    let out_rows: Vec<f64> = rows.iter().map(|r| r.rows as f64).collect();
    let preds: Vec<f64> = rows
        .iter()
        .filter(|r| r.solved)
        .map(|r| r.predicates as f64)
        .collect();
    let locs: Vec<f64> = rows
        .iter()
        .filter(|r| r.solved)
        .map(|r| r.loc as f64)
        .collect();
    println!(
        "{:<6} {:<6} | {:>5} {:>7} | {:>10.2} {:>10.2} | {:>9.1} {:>9.1} {:>7.1} {:>7.1} | {:>6.1} {:>6.1}",
        format,
        cols,
        total,
        solved,
        median(&times),
        mean(&times),
        median(&elements),
        mean(&elements),
        median(&out_rows),
        mean(&out_rows),
        mean(&preds),
        mean(&locs)
    );
}
