//! Regenerates Table 2 of the paper: example-driven migration of the four dataset
//! simulators (DBLP, IMDB, MONDIAL, YELP) into full relational databases.
//!
//! Run with: `cargo run -p mitra-bench --release --bin table2 [scale] [-- --json]
//! [-- --threads N]`
//!
//! `scale` is the number of instances per top-level entity used for the *execution*
//! document (the synthesis examples always use a tiny 2-instance sample, as in the
//! paper).  The default of 200 keeps the run under a couple of minutes; larger values
//! scale the `#Rows` and execution-time columns linearly.  With `--json`, one
//! machine-readable JSON array is emitted on stdout instead of the table.
//! `--threads N` sets the synthesis worker count (default: `MITRA_THREADS`, else all
//! cores); the `SynthTot(s)` column reports the synthesis phase's wall clock, so it
//! shrinks as the fan-out widens while the migrated rows stay byte-identical.

use mitra_bench::table2::{rows_to_json, run_table2_with};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let scale: usize = args
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            // Skip the value of --threads so `table2 -- --threads 4` keeps scale 200.
            args.get(i.wrapping_sub(1))
                .is_none_or(|prev| prev != "--threads")
        })
        .find_map(|(_, s)| s.parse().ok())
        .unwrap_or(200);

    if as_json {
        println!("{}", rows_to_json(&run_table2_with(scale, threads)));
        return;
    }

    println!("Table 2 — full-database migration of the dataset simulators (reproduction)\n");
    println!(
        "{:<9} {:<7} {:>9} | {:>7} {:>6} | {:>12} {:>12} | {:>9} {:>13} {:>13} | {:>10}",
        "Name",
        "Format",
        "Elements",
        "#Tables",
        "#Cols",
        "SynthTot(s)",
        "SynthAvg(s)",
        "#Rows",
        "ExecTot(s)",
        "ExecAvg(s)",
        "Violations"
    );

    for row in run_table2_with(scale, threads) {
        if let Some(e) = &row.error {
            println!("{:<9} {:<7} MIGRATION FAILED: {e}", row.name, row.format);
            continue;
        }
        let n = row.tables.max(1) as f64;
        println!(
            "{:<9} {:<7} {:>9} | {:>7} {:>6} | {:>12.2} {:>12.2} | {:>9} {:>13.2} {:>13.2} | {:>10}",
            row.name,
            row.format,
            row.elements,
            row.tables,
            row.columns,
            row.synth_total_secs,
            row.synth_total_secs / n,
            row.rows,
            row.exec_total_secs,
            row.exec_total_secs / n,
            row.violations
        );
    }
    println!("\n(execution scale: {scale} instances per top-level entity; synthesis always uses a 2-instance example)");
}
