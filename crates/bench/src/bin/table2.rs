//! Regenerates Table 2 of the paper: example-driven migration of the four dataset
//! simulators (DBLP, IMDB, MONDIAL, YELP) into full relational databases.
//!
//! Run with: `cargo run -p mitra-bench --release --bin table2 [scale]`
//!
//! `scale` is the number of instances per top-level entity used for the *execution*
//! document (the synthesis examples always use a tiny 2-instance sample, as in the
//! paper).  The default of 200 keeps the run under a couple of minutes; larger values
//! scale the `#Rows` and execution-time columns linearly.

use mitra_datagen::datasets::all_datasets;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    println!("Table 2 — full-database migration of the dataset simulators (reproduction)\n");
    println!(
        "{:<9} {:<7} {:>9} | {:>7} {:>6} | {:>12} {:>12} | {:>9} {:>13} {:>13} | {:>10}",
        "Name",
        "Format",
        "Elements",
        "#Tables",
        "#Cols",
        "SynthTot(s)",
        "SynthAvg(s)",
        "#Rows",
        "ExecTot(s)",
        "ExecAvg(s)",
        "Violations"
    );

    for spec in all_datasets() {
        let plan = spec.migration_plan();
        let (document, _expected) = spec.generate(scale);
        let elements = document.ids().filter(|id| !document.is_leaf(*id)).count();
        match plan.run(&document) {
            Ok(report) => {
                let n = report.tables.len() as f64;
                println!(
                    "{:<9} {:<7} {:>9} | {:>7} {:>6} | {:>12.2} {:>12.2} | {:>9} {:>13.2} {:>13.2} | {:>10}",
                    spec.name,
                    spec.format,
                    elements,
                    spec.table_count(),
                    spec.schema().total_columns(),
                    report.total_synthesis_time().as_secs_f64(),
                    report.total_synthesis_time().as_secs_f64() / n,
                    report.total_rows(),
                    report.total_execution_time().as_secs_f64(),
                    report.total_execution_time().as_secs_f64() / n,
                    report.violations
                );
            }
            Err(e) => {
                println!("{:<9} {:<7} MIGRATION FAILED: {e}", spec.name, spec.format);
            }
        }
    }
    println!("\n(execution scale: {scale} instances per top-level entity; synthesis always uses a 2-instance example)");
}
