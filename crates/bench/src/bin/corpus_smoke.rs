//! Corpus-service CI gate.
//!
//! Run with: `cargo run -p mitra-bench --release --bin corpus_smoke
//! [-- --docs N] [-- --malformed-pct P] [-- --seed S]`
//!
//! Generates a seeded mixer corpus (10% of the documents corrupted until
//! unparseable by default) and drives the checkpointed corpus migration
//! service through the full robustness matrix — 1 vs 4 threads, an injected
//! mid-corpus shard panic followed by `resume`, and the quarantine ledger —
//! then exits non-zero unless every contract holds:
//!
//! * artifacts byte-identical across thread counts and across crash+resume;
//! * exactly the seeded malformed documents quarantined, all with typed
//!   errors (never a panic), and zero constraint violations among survivors;
//! * a throughput floor (docs/sec) so the per-shape program cache cannot
//!   silently regress into per-document synthesis.

use mitra_bench::corpus_bench;

/// Generous throughput floor: tiny documents behind a per-shape program cache
/// migrate orders of magnitude faster than this even on shared CI runners;
/// falling below it means synthesis is running per document again.
const DOCS_PER_SEC_FLOOR: f64 = 5.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let docs: usize = get("--docs").and_then(|v| v.parse().ok()).unwrap_or(200);
    let malformed_pct: u32 = get("--malformed-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(0xC0FF);
    mitra_trace::set_mode(mitra_trace::TraceMode::Summary);

    let base = std::env::temp_dir().join(format!("mitra-corpus-smoke-{}", std::process::id()));
    eprintln!(
        "corpus_smoke: {docs} docs, {malformed_pct}% malformed, seed {seed:#x}, scratch {}",
        base.display()
    );
    let bench = corpus_bench::measure(docs, malformed_pct, seed, &base);

    eprintln!(
        "corpus_smoke: {} ok / {} quarantined (expected {}), {} retries, {} violations",
        bench.docs - bench.quarantined,
        bench.quarantined,
        bench.malformed_expected,
        bench.retried,
        bench.violations
    );
    eprintln!(
        "corpus_smoke: {} shards, {} resumed after the injected panic; {} shapes -> {} syntheses",
        bench.shards, bench.resumed_shards, bench.shapes, bench.programs_synthesized
    );
    eprintln!(
        "corpus_smoke: {:.1} docs/s, {:.1} rows/s; threads_identical={} resume_identical={} quarantine_exact={}",
        bench.docs_per_sec,
        bench.rows_per_sec,
        bench.threads_identical,
        bench.resume_identical,
        bench.quarantine_exact
    );
    for (name, value) in &bench.counters {
        eprintln!("corpus_smoke: counter {name} = {value}");
    }
    let _ = std::fs::remove_dir_all(&base);

    let mut failed = false;
    if !bench.passed() {
        eprintln!(
            "corpus_smoke: FATAL: a determinism or quarantine gate failed \
             (threads_identical={}, resume_identical={}, quarantine_exact={}, violations={})",
            bench.threads_identical,
            bench.resume_identical,
            bench.quarantine_exact,
            bench.violations
        );
        failed = true;
    }
    if bench.resumed_shards == 0 {
        eprintln!("corpus_smoke: FATAL: the resumed run replayed no shards from the journal");
        failed = true;
    }
    if bench.docs_per_sec < DOCS_PER_SEC_FLOOR {
        eprintln!(
            "corpus_smoke: FATAL: throughput floor broken: {:.2} docs/s < {DOCS_PER_SEC_FLOOR} \
             (is synthesis running per document instead of per shape?)",
            bench.docs_per_sec
        );
        failed = true;
    }
    let panics = bench
        .counters
        .iter()
        .find(|(n, _)| *n == "pool.panics_caught")
        .map_or(0, |(_, v)| *v);
    if panics == 0 {
        eprintln!("corpus_smoke: FATAL: the injected shard panic was not caught by the pool");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("corpus_smoke: all gates passed");
}
