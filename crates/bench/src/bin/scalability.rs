//! Regenerates the §7.1 performance paragraph and the §2 scalability claim: execution
//! time of the synthesized motivating-example program as the document grows towards a
//! million elements, for both the optimized (join-based) engine and the naive
//! cross-product semantics (the latter only at small sizes).
//!
//! Run with: `cargo run -p mitra-bench --release --bin scalability [max_elements]`

use mitra_datagen::social;
use mitra_dsl::eval::{eval_program_with, EvalLimits};
use mitra_synth::exec::execute_with_stats;
use mitra_synth::synthesize::{learn_transformation, SynthConfig};
use std::time::Instant;

fn main() {
    let max_elements: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let example = social::training_example();
    let start = Instant::now();
    let synthesis = learn_transformation(&[example], &SynthConfig::default()).expect("synthesis");
    println!(
        "Synthesized the motivating-example program in {:.2?}\n",
        start.elapsed()
    );

    println!(
        "{:>12} {:>10} | {:>14} {:>12} | {:>16}",
        "elements", "rows", "optimized(s)", "throughput", "naive(s)"
    );
    let mut size = 1_000usize;
    while size <= max_elements {
        let doc = social::social_network_with_elements(size, 2);
        let elements = doc.element_count();

        let start = Instant::now();
        let (table, _stats) = execute_with_stats(&doc, &synthesis.program);
        let optimized = start.elapsed();

        // The naive cross-product semantics is only feasible on small documents.
        let naive = if elements <= 5_000 {
            let start = Instant::now();
            // The naive cross product is the quantity being measured here, so lift
            // the evaluator's default row cap: on these document sizes the product
            // is large (tens of millions of rows) but intentionally materialized.
            let naive_table = eval_program_with(
                &doc,
                &synthesis.program,
                &EvalLimits::with_max_rows(usize::MAX),
            )
            .expect("naive evaluation succeeds without a cap");
            assert!(naive_table.same_bag(&table));
            format!("{:.2}", start.elapsed().as_secs_f64())
        } else {
            "-".to_string()
        };

        println!(
            "{:>12} {:>10} | {:>14.2} {:>10.0}/s | {:>16}",
            elements,
            table.len(),
            optimized.as_secs_f64(),
            elements as f64 / optimized.as_secs_f64(),
            naive
        );
        size *= 10;
    }
}
