//! Bench-smoke harness: a fast, machine-readable snapshot of the performance
//! trajectory, written as `BENCH_synthesis.json`.
//!
//! Run with: `cargo run -p mitra-bench --release --bin bench_smoke [-- --out PATH]
//! [-- --limit N] [-- --scale N] [-- --threads N]`
//!
//! The output combines three measurements:
//!
//! * `table1` — synthesis over the first `limit` corpus tasks (Table 1 smoke slice),
//!   run at the parallel thread count;
//! * `table2` — full-database migration of the four dataset simulators at `scale`,
//!   measured **twice**: once sequentially (`--threads 1`) and once at the parallel
//!   thread count (`--threads N`, default all cores).  The harness asserts that the
//!   synthesized programs are byte-identical across the two runs (the worker pool's
//!   canonical-merge determinism guarantee) and reports the MONDIAL synthesis
//!   speedup — the headline number of the parallel-synthesis refactor;
//! * `descendants_index` — the descendants-heavy evaluation workload comparing the
//!   pre-refactor subtree walk against the pre-order/occurrence-list index (the
//!   headline number of the tag-interning + indexing refactor; `speedup` must stay
//!   well above 2);
//! * `corpus` — the checkpointed corpus migration service on a seeded mixer
//!   corpus: thread-count and crash-resume byte-identity, exact quarantine of
//!   the malformed fraction, docs/sec throughput, and the surfaced
//!   `corpus.*` / `pool.panics_caught` counters.
//!
//! CI runs this binary on every push and uploads the JSON as an artifact; the
//! repository keeps a committed baseline so the trajectory is reviewable in-diff.
//! The process exits non-zero when the determinism check fails, so CI cannot
//! silently ship a scheduling-dependent synthesizer.

use mitra_bench::descend;
use mitra_bench::json::{int, num, obj, s, JsonValue};
use mitra_bench::table2::{
    rows_to_json_value, run_single_dataset, run_single_dataset_budgeted, run_table2_with,
    MigrationRow,
};
use mitra_bench::{mean, median, profile_to_json, run_task, table1_config};
use mitra_datagen::datasets::all_datasets;
use mitra_datagen::fuzz::migration_scenario;
use mitra_datagen::generate_corpus;
use mitra_datagen::social;
use mitra_dsl::ast::{
    ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, Program, TableExtractor,
};
use mitra_dsl::parse::parse_program;
use mitra_dsl::{Table, Value};
use mitra_hdt::Hdt;
use mitra_synth::budget::Budget;
use mitra_synth::exec::{execute_progressive, execute_with_stats, plan_with_tree};
use mitra_synth::synthesize::{learn_transformation, SynthConfig};
use mitra_trace::fault::{set_fault, FaultSpec};
use mitra_trace::TraceMode;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = get("--out").unwrap_or_else(|| "BENCH_synthesis.json".to_string());
    let limit: usize = get("--limit").and_then(|v| v.parse().ok()).unwrap_or(12);
    let scale: usize = get("--scale").and_then(|v| v.parse().ok()).unwrap_or(25);
    let threads: usize = get("--threads").and_then(|v| v.parse().ok()).unwrap_or(0);
    let trace_out = get("--trace-out");
    let parallel_threads = mitra_pool::resolve(threads);
    // Pin the trace mode so the measured runs carry metrics regardless of the
    // environment's MITRA_TRACE; the overhead block below flips it deliberately.
    mitra_trace::set_mode(TraceMode::Summary);

    // Table 1 smoke slice, at the parallel thread count.
    eprintln!("bench_smoke: table1 slice ({limit} tasks, {parallel_threads} threads)...");
    let mut tasks = generate_corpus();
    tasks.truncate(limit);
    let mut config = table1_config();
    config.threads = parallel_threads;
    let results: Vec<_> = tasks.iter().map(|t| run_task(t, &config)).collect();
    let times: Vec<f64> = results
        .iter()
        .filter(|r| r.solved)
        .map(|r| r.time.as_secs_f64())
        .collect();
    let table1 = obj(vec![
        ("tasks", int(results.len())),
        ("solved", int(results.iter().filter(|r| r.solved).count())),
        ("median_time_secs", num(median(&times))),
        ("mean_time_secs", num(mean(&times))),
        (
            "truncated_tasks",
            int(results.iter().filter(|r| r.truncated).count()),
        ),
        ("threads", int(parallel_threads)),
        ("profile", {
            let mut total = mitra_synth::SynthProfile::default();
            for r in &results {
                total.merge(&r.profile);
            }
            profile_to_json(&total)
        }),
    ]);

    // Table 2: sequential baseline, then the parallel run of the same plans.
    eprintln!("bench_smoke: table2 migrations (scale {scale}, 1 thread)...");
    let sequential = run_table2_with(scale, 1);
    let (parallel, programs_identical, mondial_speedup) = if parallel_threads > 1 {
        eprintln!("bench_smoke: table2 migrations (scale {scale}, {parallel_threads} threads)...");
        let parallel = run_table2_with(scale, parallel_threads);
        let identical = programs_match(&sequential, &parallel);
        let speedup = dataset_speedup(&sequential, &parallel, "MONDIAL");
        (Some(parallel), identical, speedup)
    } else {
        eprintln!("bench_smoke: single-threaded environment, skipping the parallel run");
        (None, true, None)
    };

    // Tracing-overhead check: MONDIAL sequential with the metrics layer off vs on
    // (summary mode).  The CI gate asserts the summary-mode run stays within 5% of
    // the untraced wall time — the "cheap enough to leave on" claim, measured.
    eprintln!("bench_smoke: MONDIAL tracing-overhead check (off vs summary)...");
    mitra_trace::set_mode(TraceMode::Off);
    let mondial_off = run_single_dataset("MONDIAL", scale, 1).expect("MONDIAL spec exists");
    mitra_trace::set_mode(TraceMode::Summary);
    let mondial_summary = run_single_dataset("MONDIAL", scale, 1).expect("MONDIAL spec exists");
    let overhead_ratio = if mondial_off.synth_total_secs > 0.0 {
        mondial_summary.synth_total_secs / mondial_off.synth_total_secs
    } else {
        1.0
    };
    let trace_overhead = obj(vec![
        ("off_secs", num(mondial_off.synth_total_secs)),
        ("summary_secs", num(mondial_summary.synth_total_secs)),
        ("overhead_ratio", num(overhead_ratio)),
    ]);
    eprintln!(
        "bench_smoke: MONDIAL synthesis off {:.2}s vs summary {:.2}s ({:+.1}% overhead)",
        mondial_off.synth_total_secs,
        mondial_summary.synth_total_secs,
        (overhead_ratio - 1.0) * 100.0
    );

    // Budget-overhead check: MONDIAL sequential with the default unlimited budget
    // vs a generous *finite* budget that never binds (the checks run, exhaustion
    // never fires).  The CI gate asserts the budgeted run stays within 2% of the
    // unlimited wall time — fuel accounting must be cheap enough to leave on.
    eprintln!("bench_smoke: MONDIAL budget-overhead check (unlimited vs finite)...");
    let mondial_unbudgeted = run_single_dataset("MONDIAL", scale, 1).expect("MONDIAL spec exists");
    let generous = Budget {
        max_candidates: Some(u64::MAX / 2),
        max_dfa_states: Some(u64::MAX / 2),
        max_rows: Some(u64::MAX / 2),
    };
    let mondial_budgeted =
        run_single_dataset_budgeted("MONDIAL", scale, 1, generous).expect("MONDIAL spec exists");
    let budget_ratio = if mondial_unbudgeted.synth_total_secs > 0.0 {
        mondial_budgeted.synth_total_secs / mondial_unbudgeted.synth_total_secs
    } else {
        1.0
    };
    let budget_overhead = obj(vec![
        ("unbudgeted_secs", num(mondial_unbudgeted.synth_total_secs)),
        ("budgeted_secs", num(mondial_budgeted.synth_total_secs)),
        ("overhead_ratio", num(budget_ratio)),
    ]);
    eprintln!(
        "bench_smoke: MONDIAL synthesis unlimited {:.2}s vs budgeted {:.2}s ({:+.1}% overhead)",
        mondial_unbudgeted.synth_total_secs,
        mondial_budgeted.synth_total_secs,
        (budget_ratio - 1.0) * 100.0
    );

    // Degradation snapshot: a 4-table fuzz migration degraded two ways — one
    // injected worker panic, then a zero-candidate fuel budget — with the
    // summary JSON embedded verbatim.  Everything here is deterministic (seeded
    // scenario, work-counting budgets, no wall-clock in any outcome), so the
    // block is diff-stable across machines; byte-identity across thread counts
    // is asserted by the fuzz_smoke gate.
    eprintln!("bench_smoke: degradation snapshot (injected panic + exhausted budget)...");
    const DEGRADATION_SEED: u64 = 0x004D_177A;
    set_fault(FaultSpec::parse("panic:migrate.table:2"));
    let (fuzz_doc, mut fault_plan) = migration_scenario(DEGRADATION_SEED, 4);
    fault_plan.synth_config.threads = 1;
    let fault_report = fault_plan.run(&fuzz_doc).expect("non-strict runs degrade");
    set_fault(None);
    let (fuzz_doc, mut budget_plan) = migration_scenario(DEGRADATION_SEED, 4);
    budget_plan.synth_config.threads = 1;
    budget_plan.synth_config.budget = Budget {
        max_candidates: Some(0),
        ..Budget::UNLIMITED
    };
    let budget_report = budget_plan.run(&fuzz_doc).expect("non-strict runs degrade");
    let summary_value =
        |json: &str| mitra_hdt::parse_json(json).expect("degradation summaries are valid JSON");
    let degradation = obj(vec![
        ("seed", int(DEGRADATION_SEED as usize)),
        ("fault", s("panic:migrate.table:2")),
        (
            "fault_injection",
            summary_value(&fault_report.summary_json()),
        ),
        (
            "budget_exhaustion",
            summary_value(&budget_report.summary_json()),
        ),
    ]);

    // Optional Perfetto artifact: re-run MONDIAL in full mode and export the span
    // buffer as Chrome trace-event JSON.
    if let Some(path) = &trace_out {
        eprintln!("bench_smoke: recording MONDIAL full-mode trace -> {path}...");
        mitra_trace::set_mode(TraceMode::Full);
        mitra_trace::clear_events();
        let _ = run_single_dataset("MONDIAL", scale, parallel_threads);
        let events = mitra_trace::take_events();
        mitra_trace::set_mode(TraceMode::Summary);
        std::fs::write(path, mitra_trace::export::chrome_trace(&events))
            .expect("write trace artifact");
        eprintln!("bench_smoke: wrote {path} ({} events)", events.len());
    }

    // Executor comparison: the planner-driven engine (interval joins, cost-based
    // ordering, interned keys) against the kept pre-planner progressive join, on
    // the E3 million-element document, on a join-ordering workload the static
    // order handles badly, and across every Table 2 dataset.  Byte-identity of
    // the emitted tables is a hard gate, like the synthesis determinism check.
    eprintln!("bench_smoke: executor workloads (E3 1M elements + join ordering + datasets)...");
    let (executor, tables_identical) = executor_block(&sequential, scale);

    // Corpus-service block: the checkpointed migration service on a seeded
    // mixer corpus — thread-count determinism, crash-resume byte-identity
    // (injected shard panic), exact quarantine of the malformed fraction, and
    // the surfaced corpus.* / pool.panics_caught counters (DESIGN.md §12).
    eprintln!("bench_smoke: corpus service (200 docs, 10% malformed, crash + resume)...");
    let corpus_scratch =
        std::env::temp_dir().join(format!("mitra-bench-corpus-{}", std::process::id()));
    let corpus_bench = mitra_bench::corpus_bench::measure(200, 10, 0xC0FF, &corpus_scratch);
    let _ = std::fs::remove_dir_all(&corpus_scratch);
    eprintln!(
        "bench_smoke: corpus {} ok / {} quarantined, {:.0} docs/s, resume_identical={}",
        corpus_bench.docs - corpus_bench.quarantined,
        corpus_bench.quarantined,
        corpus_bench.docs_per_sec,
        corpus_bench.resume_identical
    );
    let corpus_ok = corpus_bench.passed();
    let corpus = corpus_bench.to_json();

    // The descendants-index headline comparison.
    eprintln!("bench_smoke: descendants index workload...");
    let m = descend::measure(400, 400, 5);
    let descendants = obj(vec![
        ("nodes", int(m.nodes)),
        ("queries", int(m.queries)),
        ("hits", int(m.hits)),
        ("naive_secs", num(m.naive_secs)),
        ("indexed_secs", num(m.indexed_secs)),
        ("speedup", num(m.speedup())),
    ]);

    let mut table2_fields = vec![
        (
            "threads",
            obj(vec![
                ("sequential", int(1)),
                ("parallel", int(parallel_threads)),
            ]),
        ),
        ("sequential", rows_to_json_value(&sequential)),
    ];
    if let Some(par) = &parallel {
        table2_fields.push(("parallel", rows_to_json_value(par)));
    }
    table2_fields.push(("programs_identical", JsonValue::Bool(programs_identical)));
    if let Some(x) = mondial_speedup {
        table2_fields.push(("mondial_synth_speedup", num(x)));
    }
    let table2 = obj(table2_fields);

    let doc = obj(vec![
        (
            "config",
            s(format!(
                "table1 limit={limit}, table2 scale={scale} at threads 1 vs {parallel_threads}, descend 400x400 best-of-5"
            )),
        ),
        ("table1", table1),
        ("table2", table2),
        ("trace_overhead", trace_overhead),
        ("budget_overhead", budget_overhead),
        ("degradation", degradation),
        ("corpus", corpus),
        ("descendants_index", descendants),
        ("executor", executor),
    ]);

    std::fs::write(&out_path, format!("{}\n", doc.to_string_pretty()))
        .expect("write baseline file");
    eprintln!(
        "bench_smoke: wrote {out_path} (descendants speedup: {:.1}x{})",
        m.speedup(),
        match mondial_speedup {
            Some(x) => format!(", MONDIAL synth speedup: {x:.2}x"),
            None => String::new(),
        }
    );
    if !programs_identical {
        eprintln!("bench_smoke: FATAL: synthesized programs differ between thread counts");
        std::process::exit(1);
    }
    if !tables_identical {
        eprintln!("bench_smoke: FATAL: planner and progressive executors emitted different tables");
        std::process::exit(1);
    }
    if !corpus_ok {
        eprintln!("bench_smoke: FATAL: a corpus-service determinism or quarantine gate failed");
        std::process::exit(1);
    }
}

/// Best-of-`n` wall time of `f`, returning the fastest run's result and seconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..n.max(1) {
        let start = Instant::now();
        let value = f();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((value, secs));
        }
    }
    best.expect("n >= 1")
}

/// The three-column workload whose static join order is pathological: the only
/// constraint links columns 1 and 2, so the legacy order ([0, 1, 2]) cross-products
/// the two large columns before the join can prune, while the cost-based order
/// starts from the handful of filtered column-2 rows.
fn ordering_workload() -> (Hdt, Program) {
    let doc = mitra_hdt::generate::social_network(1_000, 1);
    let person = ColumnExtractor::children(ColumnExtractor::Input, "Person");
    let fid = ColumnExtractor::descendants(ColumnExtractor::Input, "fid");
    let id_of = NodeExtractor::child(NodeExtractor::Id, "id", 0);
    let filter = Predicate::Compare {
        extractor: id_of.clone(),
        index: 2,
        op: CompareOp::Lt,
        rhs: Operand::Const(Value::int(5)),
    };
    let join = Predicate::Compare {
        extractor: NodeExtractor::Id,
        index: 1,
        op: CompareOp::Eq,
        rhs: Operand::Column {
            extractor: id_of,
            index: 2,
        },
    };
    let program = Program::new(
        TableExtractor::new(vec![person.clone(), fid, person]),
        Predicate::and(filter, join),
    );
    (doc, program)
}

/// One planner-vs-progressive comparison as a JSON object; pushes the identity of
/// the two tables into `identical`.
fn compare_executors(
    label: &str,
    doc: &Hdt,
    program: &Program,
    runs: usize,
    identical: &mut bool,
) -> (JsonValue, f64) {
    let ((planner_table, stats), planner_secs) = best_of(runs, || execute_with_stats(doc, program));
    let (progressive_table, progressive_secs) = best_of(runs, || execute_progressive(doc, program));
    let same = planner_table.to_csv() == progressive_table.to_csv();
    *identical &= same;
    let speedup = if planner_secs > 0.0 {
        progressive_secs / planner_secs
    } else {
        0.0
    };
    let block = obj(vec![
        ("workload", s(label)),
        ("rows", int(planner_table.len())),
        ("planner_secs", num(planner_secs)),
        ("progressive_secs", num(progressive_secs)),
        ("speedup", num(speedup)),
        ("interval_join_steps", int(stats.interval_join_steps)),
        ("hash_join_steps", int(stats.hash_join_steps)),
        ("cross_product_steps", int(stats.cross_product_steps)),
        ("identical", JsonValue::Bool(same)),
    ]);
    (block, speedup)
}

/// Builds the `executor` JSON block: the E3 million-element motivating-example
/// document, the join-ordering workload (whose speedup CI gates at >= 2), and a
/// per-dataset planner-vs-progressive re-execution of the Table 2 programs.
/// Returns the block and whether every comparison was byte-identical.
fn executor_block(sequential: &[MigrationRow], scale: usize) -> (JsonValue, bool) {
    let mut identical = true;

    // E3: the synthesized motivating-example program over ~1M elements.
    let example = social::training_example();
    let synthesis = learn_transformation(&[example], &SynthConfig::default())
        .expect("motivating-example synthesis succeeds");
    let motivating = synthesis.program;
    let doc = social::social_network_with_elements(1_000_000, 2);
    let elements = doc.element_count();
    let plan = plan_with_tree(&motivating, &doc);
    let (counts_i, counts_h, counts_c) = plan.method_counts();
    let (mut e3, _) = compare_executors("motivating-1M", &doc, &motivating, 1, &mut identical);
    if let JsonValue::Object(fields) = &mut e3 {
        let planner_secs = fields
            .iter()
            .find(|(k, _)| k == "planner_secs")
            .and_then(|(_, v)| match v {
                JsonValue::Number(x) => Some(*x),
                _ => None,
            })
            .unwrap_or(0.0);
        let rows = fields
            .iter()
            .find(|(k, _)| k == "rows")
            .and_then(|(_, v)| match v {
                JsonValue::Number(x) => Some(*x),
                _ => None,
            })
            .unwrap_or(0.0);
        fields.push(("elements".to_string(), int(elements)));
        if planner_secs > 0.0 {
            fields.push((
                "elements_per_sec".to_string(),
                num(elements as f64 / planner_secs),
            ));
            fields.push(("rows_per_sec".to_string(), num(rows / planner_secs)));
        }
        fields.push((
            "plan_shape".to_string(),
            s(format!(
                "{counts_i} interval / {counts_h} hash / {counts_c} cross"
            )),
        ));
    }
    drop(doc);

    // The join-ordering workload: the number CI gates at >= 2.
    let (ordering_doc, ordering_program) = ordering_workload();
    let (ordering, ordering_speedup) = compare_executors(
        "join-ordering",
        &ordering_doc,
        &ordering_program,
        3,
        &mut identical,
    );

    // Re-execute every synthesized Table 2 program both ways on its dataset.
    let mut datasets = Vec::new();
    for spec in all_datasets() {
        let Some(row) = sequential.iter().find(|r| r.name == spec.name) else {
            continue;
        };
        if row.programs.is_empty() {
            continue;
        }
        let (tree, _) = spec.generate(scale);
        let programs: Vec<Program> = row
            .programs
            .iter()
            .map(|text| parse_program(text).expect("synthesized programs re-parse"))
            .collect();
        let (tables, planner_secs) = best_of(3, || {
            programs
                .iter()
                .map(|p| execute_with_stats(&tree, p).0)
                .collect::<Vec<Table>>()
        });
        let (reference, progressive_secs) = best_of(3, || {
            programs
                .iter()
                .map(|p| execute_progressive(&tree, p))
                .collect::<Vec<Table>>()
        });
        let same = tables
            .iter()
            .zip(&reference)
            .all(|(a, b)| a.to_csv() == b.to_csv());
        identical &= same;
        datasets.push(obj(vec![
            ("dataset", s(spec.name)),
            ("tables", int(programs.len())),
            ("planner_secs", num(planner_secs)),
            ("progressive_secs", num(progressive_secs)),
            ("identical", JsonValue::Bool(same)),
        ]));
    }

    eprintln!(
        "bench_smoke: executor ordering speedup {ordering_speedup:.1}x, tables identical: {identical}"
    );
    let block = obj(vec![
        ("e3_motivating", e3),
        ("ordering", ordering),
        ("ordering_speedup", num(ordering_speedup)),
        ("datasets", JsonValue::Array(datasets)),
        ("tables_identical", JsonValue::Bool(identical)),
    ]);
    (block, identical)
}

/// True when both runs synthesized byte-identical programs for every dataset.
fn programs_match(a: &[MigrationRow], b: &[MigrationRow]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(ra, rb)| ra.name == rb.name && ra.programs == rb.programs && ra.rows == rb.rows)
}

/// Wall-clock synthesis speedup of run `b` over run `a` for one dataset.
fn dataset_speedup(a: &[MigrationRow], b: &[MigrationRow], name: &str) -> Option<f64> {
    let base = a.iter().find(|r| r.name == name)?;
    let fast = b.iter().find(|r| r.name == name)?;
    if fast.synth_total_secs > 0.0 {
        Some(base.synth_total_secs / fast.synth_total_secs)
    } else {
        None
    }
}
