//! Bench-smoke harness: a fast, machine-readable snapshot of the performance
//! trajectory, written as `BENCH_synthesis.json`.
//!
//! Run with: `cargo run -p mitra-bench --release --bin bench_smoke [-- --out PATH]
//! [-- --limit N] [-- --scale N] [-- --table2-from PATH]`
//!
//! The output combines three measurements:
//!
//! * `table1` — synthesis over the first `limit` corpus tasks (Table 1 smoke slice);
//! * `table2` — full-database migration of the four dataset simulators at `scale`
//!   (or, with `--table2-from`, the JSON array a previous `table2 --json` run
//!   produced — CI uses this to avoid re-running ~2.5 minutes of synthesis);
//! * `descendants_index` — the descendants-heavy evaluation workload comparing the
//!   pre-refactor subtree walk against the pre-order/occurrence-list index (the
//!   headline number of the tag-interning + indexing refactor; `speedup` must stay
//!   well above 2).
//!
//! CI runs this binary on every push and uploads the JSON as an artifact; the
//! repository keeps a committed baseline so the trajectory is reviewable in-diff.

use mitra_bench::descend;
use mitra_bench::json::{int, num, obj, s};
use mitra_bench::table2::{rows_to_json_value, run_table2};
use mitra_bench::{mean, median, run_task, table1_config};
use mitra_datagen::generate_corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = get("--out").unwrap_or_else(|| "BENCH_synthesis.json".to_string());
    let limit: usize = get("--limit").and_then(|v| v.parse().ok()).unwrap_or(12);
    let scale: usize = get("--scale").and_then(|v| v.parse().ok()).unwrap_or(25);
    let table2_from = get("--table2-from");

    // Table 1 smoke slice.
    eprintln!("bench_smoke: table1 slice ({limit} tasks)...");
    let mut tasks = generate_corpus();
    tasks.truncate(limit);
    let config = table1_config();
    let results: Vec<_> = tasks.iter().map(|t| run_task(t, &config)).collect();
    let times: Vec<f64> = results
        .iter()
        .filter(|r| r.solved)
        .map(|r| r.time.as_secs_f64())
        .collect();
    let table1 = obj(vec![
        ("tasks", int(results.len())),
        ("solved", int(results.iter().filter(|r| r.solved).count())),
        ("median_time_secs", num(median(&times))),
        ("mean_time_secs", num(mean(&times))),
    ]);

    // Table 2: reuse a previous `table2 --json` run when provided, measure otherwise.
    let (table2, table2_desc) = match &table2_from {
        Some(path) => {
            eprintln!("bench_smoke: table2 from {path}...");
            let text = std::fs::read_to_string(path).expect("read --table2-from file");
            let value = mitra_hdt::parse_json(&text).expect("--table2-from holds JSON");
            (value, format!("from {path}"))
        }
        None => {
            eprintln!("bench_smoke: table2 migrations (scale {scale})...");
            (
                rows_to_json_value(&run_table2(scale)),
                format!("scale={scale}"),
            )
        }
    };

    // The descendants-index headline comparison.
    eprintln!("bench_smoke: descendants index workload...");
    let m = descend::measure(400, 400, 5);
    let descendants = obj(vec![
        ("nodes", int(m.nodes)),
        ("queries", int(m.queries)),
        ("hits", int(m.hits)),
        ("naive_secs", num(m.naive_secs)),
        ("indexed_secs", num(m.indexed_secs)),
        ("speedup", num(m.speedup())),
    ]);

    let doc = obj(vec![
        (
            "config",
            s(format!(
                "table1 limit={limit}, table2 {table2_desc}, descend 400x400 best-of-5"
            )),
        ),
        ("table1", table1),
        ("table2", table2),
        ("descendants_index", descendants),
    ]);

    std::fs::write(&out_path, format!("{}\n", doc.to_string_pretty()))
        .expect("write baseline file");
    eprintln!(
        "bench_smoke: wrote {out_path} (descendants speedup: {:.1}x)",
        m.speedup()
    );
}
