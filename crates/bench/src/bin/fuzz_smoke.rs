//! Fuzz-smoke gate: the seeded adversarial suite plus fault-injection and
//! budget-exhaustion determinism checks, exiting nonzero on any failure.
//!
//! Run with: `cargo run -p mitra-bench --release --bin fuzz_smoke
//! [-- --scenarios N] [-- --seed S]`
//!
//! Three gates, all deterministic (no wall-clock anywhere in a verdict):
//!
//! 1. **Differential suite** — `--scenarios` seeded scenarios (default 200)
//!    from `mitra_datagen::fuzz`, each run at 1 and 4 synthesis threads.
//!    Fails on any [`Verdict::is_failure`] (search divergence, engine
//!    divergence, panic) or any cross-thread verdict mismatch.
//! 2. **Fault injection** — a 4-table migration with
//!    `MITRA_FAULT=panic:migrate.table:2` injected: exactly one table must
//!    degrade to `failed`, its siblings must populate, and the degradation
//!    summary JSON must be byte-identical at 1 vs 4 threads.
//! 3. **Budget exhaustion** — the same migration under a zero-candidate fuel
//!    budget: every table degrades to `budget-exhausted`, again byte-identical
//!    across thread counts.
//!
//! [`Verdict::is_failure`]: mitra_datagen::Verdict::is_failure

use mitra_datagen::fuzz::{migration_scenario, run_suite};
use mitra_migrate::TableOutcome;
use mitra_synth::budget::Budget;
use mitra_trace::fault::{set_fault, FaultSpec};
use std::process::ExitCode;

const DEFAULT_SCENARIOS: usize = 200;
const DEFAULT_SEED: u64 = 0x004D_177A;

fn main() -> ExitCode {
    let mut scenarios = DEFAULT_SCENARIOS;
    let mut seed = DEFAULT_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenarios" => {
                scenarios = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scenarios takes a number");
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failures = 0usize;

    // Gate 1: the differential suite at 1 vs 4 threads.
    let one = run_suite(seed, scenarios, 1);
    let four = run_suite(seed, scenarios, 4);
    for outcome in one.outcomes.iter().chain(four.outcomes.iter()) {
        if outcome.verdict.is_failure() {
            failures += 1;
            eprintln!(
                "FAIL scenario {} ({}): {:?}",
                outcome.id, outcome.kind, outcome.verdict
            );
        }
    }
    for (a, b) in one.outcomes.iter().zip(four.outcomes.iter()) {
        if a.verdict != b.verdict {
            failures += 1;
            eprintln!(
                "FAIL scenario {} ({}): verdict differs at 1 vs 4 threads:\n  1: {:?}\n  4: {:?}",
                a.id, a.kind, a.verdict, b.verdict
            );
        }
    }
    println!("fuzz-suite: {}", one.summary_json());

    // Gate 2: an injected worker panic degrades exactly one table, identically
    // at every thread count.
    let fault_summaries: Vec<String> = [1usize, 4]
        .iter()
        .map(|&threads| {
            set_fault(FaultSpec::parse("panic:migrate.table:2"));
            let (doc, mut plan) = migration_scenario(seed, 4);
            plan.synth_config.threads = threads;
            let report = plan.run(&doc).expect("non-strict run degrades, not errors");
            set_fault(None);
            let d = report.degradation();
            if d.failed != 1 || d.ok != 3 {
                failures += 1;
                eprintln!(
                    "FAIL fault-injection at {threads} threads: expected 3 ok + 1 failed, got {}",
                    report.summary_json()
                );
            }
            if !matches!(
                report.tables[2].outcome,
                TableOutcome::Failed(mitra_migrate::MigrationError::Panicked { .. })
            ) {
                failures += 1;
                eprintln!(
                    "FAIL fault-injection at {threads} threads: table 2 outcome is `{}`",
                    report.tables[2].outcome
                );
            }
            report.summary_json()
        })
        .collect();
    if fault_summaries[0] != fault_summaries[1] {
        failures += 1;
        eprintln!(
            "FAIL fault-injection: summary differs at 1 vs 4 threads:\n  1: {}\n  4: {}",
            fault_summaries[0], fault_summaries[1]
        );
    }
    println!("fault-injection: {}", fault_summaries[0]);

    // Gate 3: a zero-candidate fuel budget exhausts every table, identically
    // at every thread count.
    let budget_summaries: Vec<String> = [1usize, 4]
        .iter()
        .map(|&threads| {
            let (doc, mut plan) = migration_scenario(seed, 4);
            plan.synth_config.threads = threads;
            plan.synth_config.budget = Budget {
                max_candidates: Some(0),
                ..Budget::UNLIMITED
            };
            let report = plan.run(&doc).expect("non-strict run degrades, not errors");
            let d = report.degradation();
            if d.budget_exhausted != 4 {
                failures += 1;
                eprintln!(
                    "FAIL budget-exhaustion at {threads} threads: expected 4 exhausted tables, got {}",
                    report.summary_json()
                );
            }
            report.summary_json()
        })
        .collect();
    if budget_summaries[0] != budget_summaries[1] {
        failures += 1;
        eprintln!(
            "FAIL budget-exhaustion: summary differs at 1 vs 4 threads:\n  1: {}\n  4: {}",
            budget_summaries[0], budget_summaries[1]
        );
    }
    println!("budget-exhaustion: {}", budget_summaries[0]);

    if failures > 0 {
        eprintln!("fuzz-smoke: {failures} failure(s)");
        ExitCode::FAILURE
    } else {
        println!("fuzz-smoke: all gates passed ({scenarios} scenarios, seed {seed})");
        ExitCode::SUCCESS
    }
}
