//! # mitra-core — the high-level Mitra engine
//!
//! This crate is the public face of the reproduction: it ties together the plug-ins
//! (XML/JSON → HDT), the synthesis engine, the optimized execution engine, the code
//! generators and the full-database migration machinery behind one small API, mirroring
//! the architecture of Figure 14 in the paper (a language-agnostic core plus
//! domain-specific plug-ins).
//!
//! ```
//! use mitra_core::Mitra;
//!
//! let xml = r#"<root>
//!   <person><name>Ada</name><role>engineer</role></person>
//!   <person><name>Grace</name><role>admiral</role></person>
//! </root>"#;
//! let output = "name,role\nAda,engineer\nGrace,admiral\n";
//!
//! let mitra = Mitra::new();
//! let synthesized = mitra.synthesize_from_xml(&[(xml, output)]).unwrap();
//! let table = mitra.run_on_xml(&synthesized.program, xml).unwrap();
//! assert_eq!(table.len(), 2);
//! ```

use mitra_codegen::{generate, Artifact, Backend};
use mitra_dsl::{Program, Table, Value};
use mitra_hdt::Hdt;
use mitra_migrate::migrate::{MigrationPlan, MigrationReport};
use mitra_migrate::Database;
use mitra_synth::exec::execute;
use mitra_synth::synthesize::{learn_transformation, Example, SynthConfig, Synthesis};

pub mod error;

pub use error::MitraError;
pub use mitra_codegen as codegen;
pub use mitra_dsl as dsl;
pub use mitra_hdt as hdt;
pub use mitra_hdt::intern;
pub use mitra_hdt::{Interner, Symbol, TagId};
pub use mitra_migrate as migrate;
pub use mitra_synth as synth;
pub use mitra_trace as trace;

/// The high-level Mitra engine: a synthesis configuration plus convenience entry
/// points for the XML and JSON plug-ins.
#[derive(Debug, Clone, Default)]
pub struct Mitra {
    /// The synthesis configuration used by all `synthesize_*` calls.
    pub config: SynthConfig,
}

impl Mitra {
    /// Creates an engine with the default configuration.
    pub fn new() -> Self {
        Mitra {
            config: SynthConfig::default(),
        }
    }

    /// Creates an engine with a custom configuration.
    pub fn with_config(config: SynthConfig) -> Self {
        Mitra { config }
    }

    /// Synthesizes a program from (XML document, output CSV) example pairs.
    ///
    /// The CSV's first line is treated as the header (column names); remaining lines
    /// are the expected rows.
    pub fn synthesize_from_xml(&self, examples: &[(&str, &str)]) -> Result<Synthesis, MitraError> {
        let examples = examples
            .iter()
            .map(|(doc, out)| {
                Ok(Example::new(
                    mitra_hdt::xml::xml_to_hdt(doc)?,
                    parse_csv_table(out)?,
                ))
            })
            .collect::<Result<Vec<_>, MitraError>>()?;
        Ok(learn_transformation(&examples, &self.config)?)
    }

    /// Synthesizes a program from (JSON document, output CSV) example pairs.
    pub fn synthesize_from_json(&self, examples: &[(&str, &str)]) -> Result<Synthesis, MitraError> {
        let examples = examples
            .iter()
            .map(|(doc, out)| {
                Ok(Example::new(
                    mitra_hdt::json::json_to_hdt(doc)?,
                    parse_csv_table(out)?,
                ))
            })
            .collect::<Result<Vec<_>, MitraError>>()?;
        Ok(learn_transformation(&examples, &self.config)?)
    }

    /// Synthesizes a program from (HTML document, output CSV) example pairs.
    pub fn synthesize_from_html(&self, examples: &[(&str, &str)]) -> Result<Synthesis, MitraError> {
        let examples = examples
            .iter()
            .map(|(doc, out)| {
                Ok(Example::new(
                    mitra_hdt::html::html_to_hdt(doc)?,
                    parse_csv_table(out)?,
                ))
            })
            .collect::<Result<Vec<_>, MitraError>>()?;
        Ok(learn_transformation(&examples, &self.config)?)
    }

    /// Synthesizes a program from already-constructed examples (any plug-in).
    pub fn synthesize(&self, examples: &[Example]) -> Result<Synthesis, MitraError> {
        Ok(learn_transformation(examples, &self.config)?)
    }

    /// Runs a program over an XML document using the optimized execution engine.
    pub fn run_on_xml(&self, program: &Program, document: &str) -> Result<Table, MitraError> {
        let tree = mitra_hdt::xml::xml_to_hdt(document)?;
        Ok(execute(&tree, program))
    }

    /// Runs a program over a JSON document using the optimized execution engine.
    pub fn run_on_json(&self, program: &Program, document: &str) -> Result<Table, MitraError> {
        let tree = mitra_hdt::json::json_to_hdt(document)?;
        Ok(execute(&tree, program))
    }

    /// Runs a program over an HTML document using the optimized execution engine.
    pub fn run_on_html(&self, program: &Program, document: &str) -> Result<Table, MitraError> {
        let tree = mitra_hdt::html::html_to_hdt(document)?;
        Ok(execute(&tree, program))
    }

    /// Runs a program over an already-parsed HDT.
    pub fn run(&self, program: &Program, tree: &Hdt) -> Table {
        execute(tree, program)
    }

    /// Emits executable code for a synthesized program (XSLT for the XML plug-in,
    /// JavaScript for the JSON plug-in).
    pub fn emit(&self, program: &Program, backend: Backend) -> Artifact {
        generate(program, backend)
    }

    /// Parses a DSL program from its textual (paper-syntax) form.
    pub fn parse_program(&self, text: &str) -> Result<Program, MitraError> {
        Ok(mitra_dsl::parse::parse_program(text)?)
    }

    /// Runs a full-database migration plan over a parsed document.
    pub fn run_migration(
        &self,
        plan: &MigrationPlan,
        document: &Hdt,
    ) -> Result<MigrationReport, MitraError> {
        Ok(plan.run(document)?)
    }

    /// Runs a SQL `SELECT` query against a migrated database.
    pub fn query(&self, db: &Database, sql: &str) -> Result<Table, MitraError> {
        Ok(mitra_migrate::run_query(db, sql)?)
    }
}

/// Parses a tiny CSV dialect (comma-separated, double-quote escaping) into a table.
/// The first line is the header.
pub fn parse_csv_table(text: &str) -> Result<Table, MitraError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let Some(header) = lines.next() else {
        return Err(MitraError::BadOutputExample("empty output example".into()));
    };
    let columns = split_csv_line(header);
    let mut table = Table::new(columns.clone());
    for line in lines {
        let cells = split_csv_line(line);
        if cells.len() != columns.len() {
            return Err(MitraError::BadOutputExample(format!(
                "row `{line}` has {} cells but the header has {}",
                cells.len(),
                columns.len()
            )));
        }
        table.push(cells.iter().map(|c| Value::from_data(c)).collect());
    }
    if table.is_empty() {
        return Err(MitraError::BadOutputExample(
            "output example has a header but no rows".into(),
        ));
    }
    Ok(table)
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                cells.push(cur.trim().to_string());
                cur = String::new();
            }
            c => cur.push(c),
        }
    }
    cells.push(cur.trim().to_string());
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    const XML: &str = r#"<root>
      <person><name>Ada</name><role>engineer</role></person>
      <person><name>Grace</name><role>admiral</role></person>
      <person><name>Edsger</name><role>professor</role></person>
    </root>"#;

    const JSON: &str = r#"{"person": [
      {"name": "Ada", "role": "engineer"},
      {"name": "Grace", "role": "admiral"},
      {"name": "Edsger", "role": "professor"}
    ]}"#;

    const OUT: &str = "name,role\nAda,engineer\nGrace,admiral\nEdsger,professor\n";

    #[test]
    fn csv_parsing_handles_quotes_and_blank_lines() {
        let t = parse_csv_table("a,b\n\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.columns, vec!["a", "b"]);
        assert_eq!(t.rows[0][1], Value::str("x,y"));
        assert_eq!(t.rows[1][1], Value::str("say \"hi\""));
        assert!(parse_csv_table("").is_err());
        assert!(parse_csv_table("a,b\n1\n").is_err());
        assert!(parse_csv_table("a,b\n").is_err());
    }

    #[test]
    fn xml_end_to_end_synthesis_and_execution() {
        let mitra = Mitra::new();
        let result = mitra.synthesize_from_xml(&[(XML, OUT)]).unwrap();
        let table = mitra.run_on_xml(&result.program, XML).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.columns, vec!["name", "role"]);
    }

    #[test]
    fn json_end_to_end_synthesis_and_execution() {
        let mitra = Mitra::new();
        let result = mitra.synthesize_from_json(&[(JSON, OUT)]).unwrap();
        let table = mitra.run_on_json(&result.program, JSON).unwrap();
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn html_end_to_end_synthesis_and_execution() {
        let html = r#"<html><body><table>
          <tr><td class="name">Ada</td><td class="role">engineer</td></tr>
          <tr><td class="name">Grace</td><td class="role">admiral</td></tr>
          <tr><td class="name">Edsger</td><td class="role">professor</td></tr>
        </table></body></html>"#;
        let mitra = Mitra::new();
        let result = mitra.synthesize_from_html(&[(html, OUT)]).unwrap();
        let table = mitra.run_on_html(&result.program, html).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.columns, vec!["name", "role"]);
    }

    #[test]
    fn emit_produces_both_backends() {
        let mitra = Mitra::new();
        let result = mitra.synthesize_from_xml(&[(XML, OUT)]).unwrap();
        assert!(mitra
            .emit(&result.program, Backend::Xslt)
            .source
            .contains("xsl:stylesheet"));
        assert!(mitra
            .emit(&result.program, Backend::JavaScript)
            .source
            .contains("function transform"));
    }

    #[test]
    fn parse_errors_are_reported() {
        let mitra = Mitra::new();
        assert!(matches!(
            mitra.synthesize_from_xml(&[("<broken", OUT)]),
            Err(MitraError::Parse(_))
        ));
        assert!(matches!(
            mitra.synthesize_from_xml(&[(XML, "")]),
            Err(MitraError::BadOutputExample(_))
        ));
    }

    #[test]
    fn synthesis_errors_are_reported() {
        let mitra = Mitra::new();
        let bad_out = "name,role\nNotInTheDocument,whatever\n";
        assert!(matches!(
            mitra.synthesize_from_xml(&[(XML, bad_out)]),
            Err(MitraError::Synthesis(_))
        ));
    }
}
