//! The unified error layer of the Mitra stack.
//!
//! Each crate in the workspace keeps a small, crate-local error type close to the
//! code that raises it (`HdtError` in `mitra-hdt`, `SynthError` in `mitra-synth`,
//! `ParseError` in `mitra-dsl`, `MigrationError` / `QueryError` / `SchemaError` in
//! `mitra-migrate`). Those types cannot share a definition without inverting the
//! dependency DAG, so the unification happens here, at the top of the DAG:
//! [`MitraError`] wraps every crate-local error *losslessly* (the full inner error
//! is stored, nothing is flattened to a string), provides one consistent
//! [`std::fmt::Display`] rendering, and chains the inner error through
//! [`std::error::Error::source`] so callers using `anyhow`-style chain walking see
//! the crate-local error as the cause.
//!
//! `MitraError` is the only error type the `mitra` facade crate exports.

use mitra_dsl::eval::EvalError;
use mitra_dsl::parse::ParseError;
use mitra_hdt::HdtError;
use mitra_migrate::migrate::MigrationError;
use mitra_migrate::query::QueryError;
use mitra_migrate::schema::SchemaError;
use mitra_synth::budget::BudgetExhausted;
use mitra_synth::synthesize::SynthError;
use std::fmt;

/// Any error the Mitra stack can surface, one variant per subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MitraError {
    /// The input document could not be parsed by a plug-in (XML/JSON/HTML).
    Parse(HdtError),
    /// The output-example CSV could not be interpreted.
    BadOutputExample(String),
    /// A DSL program's textual form could not be parsed.
    DslParse(ParseError),
    /// Naive evaluation exceeded its resource limits (cross-product row cap).
    Eval(EvalError),
    /// Synthesis failed.
    Synthesis(SynthError),
    /// A deterministic fuel budget ran out before any program was found; the
    /// payload carries the exhausted resource and the partial work profile.
    BudgetExhausted(BudgetExhausted),
    /// Full-database migration failed.
    Migration(MigrationError),
    /// A SQL query over a migrated database failed.
    Query(QueryError),
    /// A relational schema was invalid.
    Schema(SchemaError),
}

impl fmt::Display for MitraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitraError::Parse(e) => write!(f, "failed to parse input document: {e}"),
            MitraError::BadOutputExample(e) => write!(f, "bad output example: {e}"),
            MitraError::DslParse(e) => write!(f, "failed to parse DSL program: {e}"),
            MitraError::Eval(e) => write!(f, "evaluation failed: {e}"),
            MitraError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            MitraError::BudgetExhausted(e) => write!(f, "synthesis budget exhausted: {e}"),
            MitraError::Migration(e) => write!(f, "migration failed: {e}"),
            MitraError::Query(e) => write!(f, "query failed: {e}"),
            MitraError::Schema(e) => write!(f, "invalid schema: {e}"),
        }
    }
}

impl std::error::Error for MitraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MitraError::Parse(e) => Some(e),
            MitraError::BadOutputExample(_) => None,
            MitraError::DslParse(e) => Some(e),
            MitraError::Eval(e) => Some(e),
            MitraError::Synthesis(e) => Some(e),
            MitraError::BudgetExhausted(e) => Some(e),
            MitraError::Migration(e) => Some(e),
            MitraError::Query(e) => Some(e),
            MitraError::Schema(e) => Some(e),
        }
    }
}

impl From<HdtError> for MitraError {
    fn from(e: HdtError) -> Self {
        MitraError::Parse(e)
    }
}

impl From<ParseError> for MitraError {
    fn from(e: ParseError) -> Self {
        MitraError::DslParse(e)
    }
}

impl From<EvalError> for MitraError {
    fn from(e: EvalError) -> Self {
        MitraError::Eval(e)
    }
}

impl From<SynthError> for MitraError {
    fn from(e: SynthError) -> Self {
        match e {
            // Budget exhaustion gets its own top-level variant: callers (CLI,
            // migration degradation reports) treat "ran out of fuel" differently
            // from "no program exists".
            SynthError::BudgetExhausted(b) => MitraError::BudgetExhausted(b),
            other => MitraError::Synthesis(other),
        }
    }
}

impl From<BudgetExhausted> for MitraError {
    fn from(e: BudgetExhausted) -> Self {
        MitraError::BudgetExhausted(e)
    }
}

impl From<MigrationError> for MitraError {
    fn from(e: MigrationError) -> Self {
        MitraError::Migration(e)
    }
}

impl From<QueryError> for MitraError {
    fn from(e: QueryError) -> Self {
        MitraError::Query(e)
    }
}

impl From<SchemaError> for MitraError {
    fn from(e: SchemaError) -> Self {
        MitraError::Schema(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn from_hdt_error_is_lossless() {
        let inner = HdtError::parse("unexpected '<'", 42);
        let e: MitraError = inner.clone().into();
        assert_eq!(e, MitraError::Parse(inner.clone()));
        // Display wraps but preserves the inner rendering.
        assert!(e.to_string().contains(&inner.to_string()));
    }

    #[test]
    fn from_synth_error_is_lossless() {
        let e: MitraError = SynthError::NoColumnExtractor(3).into();
        assert_eq!(e, MitraError::Synthesis(SynthError::NoColumnExtractor(3)));
        assert!(e.to_string().contains("column 3"));
    }

    #[test]
    fn from_conversions_cover_every_subsystem() {
        let cases: Vec<MitraError> = vec![
            HdtError::Structure("empty".into()).into(),
            ParseError {
                message: "bad token".into(),
                offset: 7,
            }
            .into(),
            EvalError::TooManyRows { rows: 10, cap: 5 }.into(),
            SynthError::Timeout.into(),
            SynthError::BudgetExhausted(BudgetExhausted {
                breach: mitra_synth::budget::BudgetBreach {
                    resource: mitra_synth::budget::BudgetResource::Candidates,
                    spent: 8,
                    limit: 8,
                },
                profile: Default::default(),
            })
            .into(),
            MigrationError::UnknownTable("t".into()).into(),
            QueryError::UnknownColumn("c".into()).into(),
            SchemaError("dangling foreign key".into()).into(),
        ];
        // Each conversion lands in its own variant.
        let variants: Vec<&'static str> = cases
            .iter()
            .map(|e| match e {
                MitraError::Parse(_) => "parse",
                MitraError::BadOutputExample(_) => "example",
                MitraError::DslParse(_) => "dsl",
                MitraError::Eval(_) => "eval",
                MitraError::Synthesis(_) => "synth",
                MitraError::BudgetExhausted(_) => "budget",
                MitraError::Migration(_) => "migration",
                MitraError::Query(_) => "query",
                MitraError::Schema(_) => "schema",
            })
            .collect();
        assert_eq!(
            variants,
            vec![
                "parse",
                "dsl",
                "eval",
                "synth",
                "budget",
                "migration",
                "query",
                "schema"
            ]
        );
    }

    #[test]
    fn source_chains_to_the_crate_local_error() {
        let e: MitraError = SynthError::Timeout.into();
        let source = e.source().expect("wrapped errors expose a source");
        assert_eq!(source.to_string(), SynthError::Timeout.to_string());

        let e: MitraError = QueryError::Parse("unbalanced parens".into()).into();
        assert!(e.source().unwrap().to_string().contains("unbalanced"));

        // String-only variants have no structured cause.
        assert!(MitraError::BadOutputExample("empty".into())
            .source()
            .is_none());
    }

    #[test]
    fn display_is_prefixed_per_subsystem() {
        assert!(MitraError::from(SynthError::NoProgram)
            .to_string()
            .starts_with("synthesis failed"));
        assert!(MitraError::from(MigrationError::ArityMismatch("t".into()))
            .to_string()
            .starts_with("migration failed"));
        assert!(MitraError::from(QueryError::UnknownTable("t".into()))
            .to_string()
            .starts_with("query failed"));
    }
}
