//! # mitra-pool — a scoped worker pool for deterministic fan-out
//!
//! The synthesizer's hot loops (per-column DFA construction, candidate predicate
//! learning, per-table migration synthesis) are embarrassingly parallel but must stay
//! **byte-identical** to the sequential path: the paper's Occam's-razor ranking breaks
//! ties by enumeration order, so results may never depend on thread scheduling.
//!
//! This crate provides exactly one primitive, [`parallel_map`]: apply a function to
//! every element of a slice on up to `threads` scoped workers and return the results
//! **in input order**.  Workers pull indices from a shared atomic counter (dynamic
//! scheduling, so an expensive item does not serialize a whole chunk behind it) and
//! write each result into its own slot, so the merged output is independent of which
//! worker computed what.  Callers then reduce in canonical order themselves.
//!
//! Thread-count resolution (see [`resolve`]) has three layers:
//!
//! 1. an explicit request (`--threads N` on the CLI / bench bins, `SynthConfig::threads`),
//! 2. the `MITRA_THREADS` environment variable,
//! 3. the machine's available parallelism.
//!
//! `1` always restores the sequential path: `parallel_map` with one thread runs the
//! closure inline on the calling thread, spawning nothing.
//!
//! Nested fan-out (a migration plan fans out across tables, each table's synthesis
//! fans out across candidates) is bounded by a thread-local depth: past
//! [`MAX_NESTING`] levels of pool workers, further `parallel_map` calls degrade to
//! inline execution instead of oversubscribing the machine quadratically.
//!
//! **Panic isolation**: every slot runs under `catch_unwind`, so a panicking task
//! poisons only its own result.  [`parallel_map_catch`] surfaces each slot as a
//! `Result<R, PanicPayload>` (sibling tasks and the deterministic merge order
//! survive; the payload message and a backtrace land in the `mitra-trace` panic
//! log and the `pool.panics_caught` counter), while [`parallel_map`] keeps the
//! infallible signature by re-panicking with the **first panicking slot in input
//! order** after all siblings finish — deterministic at every thread count,
//! unlike the raw scope-join propagation it replaces.

// This crate is part of the hardened fault-tolerance surface: panicking
// shortcuts are lint-rejected outside tests (see clippy.toml for the list).
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Fan-out depth past which `parallel_map` stops spawning and runs inline.
///
/// Depth 0 is the ordinary caller, depth 1 is a worker of a depth-0 pool, and so on.
/// Two levels cover the real nesting in this codebase (migration plan → per-table
/// synthesis → per-candidate work) while capping the worst case at `threads²` live
/// threads.
pub const MAX_NESTING: usize = 2;

/// Explicitly configured global thread count; 0 means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Current pool nesting depth of this thread (0 outside any pool worker).
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The machine's available parallelism (at least 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-global thread count (e.g. from a `--threads` CLI flag).
/// Passing 0 clears the explicit setting, falling back to `MITRA_THREADS` / auto.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The process-global thread count: the explicitly set value if any, otherwise the
/// `MITRA_THREADS` environment variable (ignored when unparsable or 0), otherwise
/// the available parallelism.
pub fn threads() -> usize {
    let set = GLOBAL_THREADS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    if let Ok(v) = std::env::var("MITRA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available()
}

/// Resolves a per-call request against the global configuration: 0 means "use the
/// global setting", anything else is taken literally.
pub fn resolve(requested: usize) -> usize {
    if requested == 0 {
        threads()
    } else {
        requested
    }
}

/// Current pool nesting depth of the calling thread (0 outside any worker).
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// Payload of a worker panic caught by [`parallel_map_catch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicPayload {
    /// Stringified panic payload (`&str`/`String` payloads verbatim, a fixed
    /// placeholder otherwise).
    pub message: String,
}

impl std::fmt::Display for PanicPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Stringifies a caught panic payload; non-string payloads get a placeholder so
/// the message is deterministic.  Public so sibling crates that run their own
/// `catch_unwind` (e.g. per-table execution in `mitra-migrate`) stringify
/// payloads identically.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one slot under `catch_unwind`: the deterministic fault site
/// `pool.slot:<index>` fires inside the guard, and a caught panic is recorded
/// into the `mitra-trace` panic log before it is returned as data.
fn run_caught<T, R, F>(f: &F, i: usize, item: &T) -> Result<R, PanicPayload>
where
    F: Fn(usize, &T) -> R + Sync,
{
    match std::panic::catch_unwind(AssertUnwindSafe(|| {
        mitra_trace::fault::hit("pool.slot", i as u64);
        f(i, item)
    })) {
        Ok(r) => Ok(r),
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            mitra_trace::counter_add!("pool.panics_caught", 1);
            mitra_trace::fault::record_panic(format!("pool.slot#{i}"), message.clone());
            Err(PanicPayload { message })
        }
    }
}

/// Applies `f` to every item, returning results in input order.
///
/// With `threads <= 1`, a single item, or past [`MAX_NESTING`] levels of nesting,
/// this is a plain sequential loop on the calling thread — exactly the code path a
/// `--threads 1` run takes.  Otherwise `min(threads, items.len())` scoped workers
/// pull item indices from a shared counter; each result lands in its input slot, so
/// the output order (and therefore any canonical reduction over it) is independent
/// of scheduling.
///
/// A panicking slot does **not** take down its siblings: every sibling task still
/// completes, and once all slots are filled the first panicking slot **in input
/// order** re-panics on the caller with the original payload message — the same
/// panic at every thread count.  Callers that want the surviving slots instead use
/// [`parallel_map_catch`].
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_catch(threads, items, f)
        .into_iter()
        .map(|slot| match slot {
            Ok(r) => r,
            Err(p) => panic!("worker panicked: {p}"),
        })
        .collect()
}

/// [`parallel_map`] with per-slot panic isolation surfaced to the caller: each
/// result slot is `Ok(R)` or the caught [`PanicPayload`] of that slot alone.
///
/// Sibling tasks, the pool, and the input-order result layout all survive a
/// panicking slot; the payload message and a backtrace captured at the unwind
/// boundary are recorded into the `mitra-trace` panic log
/// ([`mitra_trace::fault::take_panics`]) and counted by `pool.panics_caught`.
pub fn parallel_map_catch<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<Result<R, PanicPayload>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let depth = current_depth();
    if threads <= 1 || items.len() <= 1 || depth >= MAX_NESTING {
        // Inline path: report under worker slot 0 so sequential runs still show
        // pool utilization (one timing pair for the whole loop, not per item).
        if mitra_trace::enabled() && !items.is_empty() {
            let start = std::time::Instant::now();
            let out: Vec<Result<R, PanicPayload>> = items
                .iter()
                .enumerate()
                .map(|(i, t)| run_caught(&f, i, t))
                .collect();
            mitra_trace::record_worker(
                0,
                mitra_trace::duration_to_ns(start.elapsed()),
                0,
                items.len() as u64,
            );
            mitra_trace::counter_add!("pool.parallel_map.inline", 1);
            return out;
        }
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_caught(&f, i, t))
            .collect();
    }

    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<Result<R, PanicPayload>>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || Mutex::new(None));

    mitra_trace::counter_add!("pool.parallel_map.spawned", 1);
    let trace_on = mitra_trace::enabled();
    let (next, slots_ref, f) = (&next, &slots, &f);
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                DEPTH.with(|d| d.set(depth + 1));
                let span_start = trace_on.then(std::time::Instant::now);
                let mut busy_ns: u64 = 0;
                let mut pulls: u64 = 0;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let item_start = trace_on.then(std::time::Instant::now);
                    let r = run_caught(f, i, &items[i]);
                    // The slot lock is only ever held for this assignment (never
                    // across `f`), so a poisoned lock still guards intact data.
                    *slots_ref[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    if let Some(s) = item_start {
                        busy_ns += mitra_trace::duration_to_ns(s.elapsed());
                        pulls += 1;
                    }
                }
                if let Some(s) = span_start {
                    // Anything not spent computing items is time the worker spent
                    // claiming indices or waiting for the scope — report as idle.
                    let total_ns = mitra_trace::duration_to_ns(s.elapsed());
                    mitra_trace::record_worker(w, busy_ns, total_ns.saturating_sub(busy_ns), pulls);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(r) => r,
                // `run_caught` converts every panic into data, so a claimed index
                // always gets its slot written before the scope joins.
                None => unreachable!("worker filled every claimed slot"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_and_preserve_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq = parallel_map(1, &items, |i, x| i * 1000 + x * x);
        for t in [2, 3, 8] {
            let par = parallel_map(t, &items, |i, x| i * 1000 + x * x);
            assert_eq!(seq, par, "threads={t}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(4, &empty, |_, x| *x).is_empty());
        assert_eq!(parallel_map(4, &[7u8], |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced_dynamically() {
        // Items with wildly different costs must all complete and stay ordered.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(4, &items, |_, &x| {
            let spin = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn nesting_is_bounded() {
        let outer: Vec<usize> = (0..4).collect();
        let depths = parallel_map(4, &outer, |_, _| {
            let inner: Vec<usize> = (0..4).collect();
            parallel_map(4, &inner, |_, _| {
                // Depth 2: this level must run inline.
                let innermost: Vec<usize> = (0..2).collect();
                let d_before = current_depth();
                let ds = parallel_map(4, &innermost, |_, _| current_depth());
                assert!(ds.iter().all(|&d| d == d_before), "inline past MAX_NESTING");
                current_depth()
            })
        });
        for level in depths.iter().flatten() {
            assert_eq!(*level, 2);
        }
    }

    #[test]
    fn resolve_honors_explicit_request() {
        assert_eq!(resolve(3), 3);
        assert_eq!(resolve(1), 1);
        // 0 falls through to the global/env/auto chain, which is at least 1.
        assert!(resolve(0) >= 1);
    }

    #[test]
    fn set_threads_overrides_auto() {
        set_threads(5);
        assert_eq!(threads(), 5);
        assert_eq!(resolve(0), 5);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked: boom")]
    fn worker_panics_propagate_deterministically() {
        // Two slots panic; the re-raised panic must be the first in *input*
        // order ("boom" at index 2, not "later" at index 5), at any thread count.
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(4, &items, |_, &x| {
            if x == 5 {
                panic!("later");
            }
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn catch_isolates_panics_to_their_slot() {
        let items: Vec<usize> = (0..16).collect();
        for t in [1, 4] {
            let out = parallel_map_catch(t, &items, |_, &x| {
                if x % 5 == 3 {
                    panic!("slot {x} down");
                }
                x * 10
            });
            assert_eq!(out.len(), items.len(), "threads={t}");
            for (i, slot) in out.iter().enumerate() {
                if i % 5 == 3 {
                    assert_eq!(
                        slot.as_ref().map_err(|p| p.message.as_str()),
                        Err(format!("slot {i} down").as_str()),
                        "threads={t}"
                    );
                } else {
                    assert_eq!(slot.as_ref().ok(), Some(&(i * 10)), "threads={t}");
                }
            }
        }
    }

    #[test]
    fn injected_fault_kills_the_same_slot_at_every_thread_count() {
        // Process-global fault spec: serialized against other fault users by
        // being the only in-crate test that installs one.
        mitra_trace::fault::set_fault(Some(mitra_trace::fault::FaultSpec {
            site: "pool.slot".into(),
            nth: 6,
        }));
        let items: Vec<usize> = (0..12).collect();
        let runs: Vec<Vec<Result<usize, PanicPayload>>> = [1usize, 4]
            .iter()
            .map(|&t| parallel_map_catch(t, &items, |_, &x| x + 1))
            .collect();
        mitra_trace::fault::set_fault(None);
        assert_eq!(runs[0], runs[1], "fault victim must not depend on threads");
        for (i, slot) in runs[0].iter().enumerate() {
            if i == 6 {
                assert_eq!(
                    slot,
                    &Err(PanicPayload {
                        message: "injected fault: pool.slot#6".into()
                    })
                );
            } else {
                assert_eq!(slot, &Ok(i + 1));
            }
        }
    }
}
