//! Differential suite for the cost-ordered best-first search.
//!
//! The lazy heap-frontier search in `learn_transformation` must be a pure
//! performance transformation: on any specification where the pre-refactor
//! materialize-then-sweep pipeline's caps do not bind, both searches explore the
//! same program space and must return **identical** programs and costs (or the
//! same error).  `learn_transformation_exhaustive` preserves the old pipeline
//! exactly for that comparison.
//!
//! The suite also pins the headline search-space win: the two Table 1 slice tasks
//! that used to report `truncated: true` (the per-column word cap cut their
//! enumeration short) now stream candidates from the automata and report
//! `truncated: false`.

use mitra::datagen::generate_corpus;
use mitra::dsl::{pretty, Table, Value};
use mitra::hdt::generate::{social_network, social_network_rows};
use mitra::hdt::Hdt;
use mitra::synth::dfa::DfaLimits;
use mitra::synth::synthesize::{
    learn_transformation, learn_transformation_exhaustive, Example, SynthConfig, SynthError,
};
use mitra::synth::universe::UniverseConfig;
use proptest::prelude::*;
use std::time::Duration;

/// A configuration whose caps are wide enough that the exhaustive path's
/// materialized candidate lists cover the whole space: the two searches then
/// range over the same programs and must agree exactly.  The space itself is kept
/// small through the word-length bound and a light predicate universe — with an
/// `atoms ≥ 1` winner the best-first search cannot terminate before the frontier
/// drains, so "non-binding caps" over the full default space would mean sweeping
/// it exhaustively on both sides.
fn uncapped_config() -> SynthConfig {
    SynthConfig {
        timeout: None,
        dfa_limits: DfaLimits {
            max_word_len: 4,
            ..Default::default()
        },
        universe: UniverseConfig {
            max_node_extractor_depth: 2,
            max_extractors_per_column: 12,
            max_constants: 8,
            with_ordering: false,
        },
        max_column_candidates: 100_000,
        max_table_candidates: 100_000,
        threads: 1,
        ..Default::default()
    }
}

/// Runs both searches and asserts identical outcomes: the same error, or the same
/// pretty-printed program at the same cost.
fn assert_equivalent(examples: &[Example]) -> Result<(), TestCaseError> {
    let config = uncapped_config();
    let fast = learn_transformation(examples, &config);
    let slow = learn_transformation_exhaustive(examples, &config);
    match (&fast, &slow) {
        (Ok(f), Ok(s)) => {
            prop_assert!(
                pretty::program(&f.program) == pretty::program(&s.program),
                "programs diverged:\nbest-first: {}\nexhaustive: {}",
                pretty::program(&f.program),
                pretty::program(&s.program)
            );
            prop_assert_eq!(f.cost, s.cost);
        }
        (Err(ef), Err(es)) => prop_assert_eq!(ef, es),
        _ => prop_assert!(
            false,
            "outcomes diverged: best-first {:?}, exhaustive {:?}",
            fast.as_ref().map(|s| pretty::program(&s.program)),
            slow.as_ref().map(|s| pretty::program(&s.program))
        ),
    }
    Ok(())
}

fn social_example(n: usize, f: usize) -> Example {
    let tree = social_network(n, f);
    let rows = social_network_rows(n, f);
    let mut output = Table::new(vec![
        "Person".to_string(),
        "Friend-with".to_string(),
        "years".to_string(),
    ]);
    for r in rows {
        output.push(r.iter().map(|s| Value::from_data(s)).collect());
    }
    Example::new(tree, output)
}

#[test]
fn equivalent_on_the_motivating_example() {
    assert_equivalent(&[social_example(2, 1)]).unwrap();
}

#[test]
fn equivalent_on_single_column_projection() {
    let ex = Example::new(
        social_network(3, 1),
        Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]),
    );
    assert_equivalent(&[ex]).unwrap();
}

#[test]
fn equivalent_on_unsatisfiable_specification() {
    let ex = Example::new(
        social_network(2, 1),
        Table::from_rows(&["x"], &[&["value-not-in-tree"]]),
    );
    let config = uncapped_config();
    assert_eq!(
        learn_transformation(std::slice::from_ref(&ex), &config).unwrap_err(),
        SynthError::NoColumnExtractor(0)
    );
    assert_eq!(
        learn_transformation_exhaustive(&[ex], &config).unwrap_err(),
        SynthError::NoColumnExtractor(0)
    );
}

/// A small random tree of people with ids and cities, plus an output projecting a
/// random subset of the available fields — the same document family the index and
/// determinism property tests use.
fn random_projection_spec(people: usize, pick_city: bool, seed: u64) -> (Hdt, Table) {
    let mut doc = String::from("<db>");
    for i in 0..people {
        // Deterministic but seed-scrambled field values.
        let v = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i as u64);
        doc.push_str(&format!(
            "<person><name>p{i}</name><id>{}</id><city>c{}</city></person>",
            v % 97,
            v % 5
        ));
    }
    doc.push_str("</db>");
    let tree = mitra::hdt::xml::xml_to_hdt(&doc).expect("valid XML");
    let mut table = if pick_city {
        Table::new(vec!["name".to_string(), "city".to_string()])
    } else {
        Table::new(vec!["name".to_string()])
    };
    for i in 0..people {
        let v = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i as u64);
        let mut row = vec![Value::from_data(&format!("p{i}"))];
        if pick_city {
            row.push(Value::from_data(&format!("c{}", v % 5)));
        }
        table.push(row);
    }
    (tree, table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn best_first_matches_exhaustive_on_random_projections(
        people in 2usize..5,
        pick_city in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (tree, output) = random_projection_spec(people, pick_city, seed);
        assert_equivalent(&[Example::new(tree, output)])?;
    }
}

/// Table 1 slice regression: corpus tasks 10 and 11 (`nested-join-2col-*`) used to
/// report `truncated: true` because the 16-word enumeration cap cut their column
/// candidate lists short.  Streaming enumeration has no such cap — the flag now
/// only reports DFA *construction* limits, which these tasks do not hit.
#[test]
fn previously_truncated_table1_tasks_are_now_exact() {
    let tasks = generate_corpus();
    let config = SynthConfig {
        timeout: Some(Duration::from_secs(60)),
        ..Default::default()
    };
    for id in [10usize, 11] {
        let task = &tasks[id];
        assert_eq!(task.id, id);
        let synthesis = learn_transformation(std::slice::from_ref(&task.example), &config)
            .unwrap_or_else(|e| panic!("task {id} ({}) failed: {e}", task.name));
        assert!(
            !synthesis.truncated,
            "task {id} ({}) still reports a truncated search space",
            task.name
        );
    }
}
