//! Integration tests for the checkpointed corpus migration service
//! (DESIGN.md §12): crash-resume byte-identity at 1 vs 4 threads, exact
//! quarantine of a seeded malformed fraction with zero FK violations, and
//! synthesize-once-per-shape verified through the `synth.candidates.examined`
//! counter.
//!
//! Fault injection and metrics counters are process-global, so the tests
//! serialize on one mutex.

use mitra::datagen::fuzz::{mixed_corpus, mixer_job, CorpusMix};
use mitra::migrate::corpus::{resume, run, CorpusError, CorpusJob, FailureKind};
use mitra::trace::fault::{set_fault, FaultSpec};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

static SERIAL: Mutex<()> = Mutex::new(());

/// Clears any injected fault when a test exits (even by panic).
struct FaultGuard;

impl Drop for FaultGuard {
    fn drop(&mut self) {
        set_fault(None);
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mitra-corpus-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The comparable artifacts of a finished run, as raw bytes.
fn artifacts(out_dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files = vec![
        "failure_ledger.jsonl".to_string(),
        "summary.json".to_string(),
    ];
    let tables_dir = out_dir.join("tables");
    let mut tables: Vec<String> = std::fs::read_dir(&tables_dir)
        .unwrap()
        .map(|e| format!("tables/{}", e.unwrap().file_name().to_string_lossy()))
        .collect();
    tables.sort();
    files.extend(tables);
    files
        .into_iter()
        .map(|rel| {
            let bytes = std::fs::read(out_dir.join(&rel)).unwrap();
            (rel, bytes)
        })
        .collect()
}

fn mixer_job_with(threads: usize, shard_size: usize) -> CorpusJob {
    let mut job = mixer_job();
    job.config.threads = threads;
    job.config.shard_size = shard_size;
    job
}

#[test]
fn crash_resume_is_byte_identical_to_an_uninterrupted_run() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let mix = CorpusMix {
        seed: 42,
        docs: 60,
        malformed_pct: 10,
        promo_pct: 0,
    };
    let corpus = mixed_corpus(&mix);
    let mut per_thread_artifacts = Vec::new();
    for threads in [1usize, 4] {
        let job = mixer_job_with(threads, 8);

        let clean_dir = temp_dir(&format!("clean-t{threads}"));
        let clean = run(&job, &corpus.text, &clean_dir).unwrap();
        assert_eq!(clean.resumed_shards, 0);
        assert_eq!(clean.shards, 8);

        // Kill the shard-3 worker mid-corpus, then resume.
        let faulted_dir = temp_dir(&format!("faulted-t{threads}"));
        let _fault_guard = FaultGuard;
        set_fault(FaultSpec::parse("panic:corpus.shard:3"));
        let interrupted = run(&job, &corpus.text, &faulted_dir);
        match interrupted {
            Err(CorpusError::ShardPanicked { shard, .. }) => assert_eq!(shard, 3),
            other => panic!("expected a shard panic, got {other:?}"),
        }
        set_fault(None);
        let resumed = resume(&job, &corpus.text, &faulted_dir).unwrap();
        assert!(
            resumed.resumed_shards >= 3,
            "shards before the fault were checkpointed ({} resumed)",
            resumed.resumed_shards
        );
        assert_eq!(resumed.summary_json(), clean.summary_json());

        let clean_bytes = artifacts(&clean_dir);
        let resumed_bytes = artifacts(&faulted_dir);
        assert_eq!(
            clean_bytes, resumed_bytes,
            "interrupted+resumed artifacts must be byte-identical (threads={threads})"
        );
        per_thread_artifacts.push(clean_bytes);
        std::fs::remove_dir_all(&clean_dir).ok();
        std::fs::remove_dir_all(&faulted_dir).ok();
    }
    assert_eq!(
        per_thread_artifacts[0], per_thread_artifacts[1],
        "artifacts must be byte-identical at 1 vs 4 threads"
    );
}

#[test]
fn seeded_malformed_fraction_is_exactly_quarantined_with_zero_violations() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let mix = CorpusMix {
        seed: 7,
        docs: 100,
        malformed_pct: 10,
        promo_pct: 0,
    };
    let corpus = mixed_corpus(&mix);
    assert!(!corpus.malformed.is_empty());
    let job = mixer_job_with(0, 16);
    let out_dir = temp_dir("quarantine");
    let report = run(&job, &corpus.text, &out_dir).unwrap();

    let quarantined: Vec<usize> = report.quarantined.iter().map(|q| q.doc).collect();
    assert_eq!(
        quarantined, corpus.malformed,
        "exactly the seeded malformed documents are quarantined, in order"
    );
    assert!(
        report
            .quarantined
            .iter()
            .all(|q| q.kind == FailureKind::Malformed && q.attempts == 1),
        "corruption quarantines with a typed parse error, never a panic"
    );
    for q in &report.quarantined {
        let line = corpus.text[q.offset..].split('\n').next().unwrap();
        assert!(
            mitra::hdt::xml::xml_to_hdt(line).is_err(),
            "ledger offset {} must point at the corrupted line",
            q.offset
        );
    }
    assert_eq!(report.ok_docs + report.quarantined.len(), report.docs);
    assert_eq!(
        report.violations, 0,
        "no FK violations among surviving rows"
    );

    // The ledger on disk matches the report, one fixed-order record per line.
    let ledger = std::fs::read_to_string(out_dir.join("failure_ledger.jsonl")).unwrap();
    assert_eq!(ledger.lines().count(), report.quarantined.len());
    assert!(ledger
        .lines()
        .all(|l| l.contains("\"kind\": \"malformed\"")));

    // Foreign keys are real values resolving to customer primary keys, not
    // NULLs that would vacuously satisfy the constraint check.
    let customers = std::fs::read_to_string(out_dir.join("tables").join("customer.csv")).unwrap();
    let pks: HashSet<&str> = customers
        .lines()
        .skip(1)
        .map(|l| l.split(',').next().unwrap())
        .collect();
    let purchases = std::fs::read_to_string(out_dir.join("tables").join("purchase.csv")).unwrap();
    let mut fk_rows = 0usize;
    for line in purchases.lines().skip(1) {
        let fk = line.split(',').nth(1).unwrap();
        assert!(!fk.is_empty(), "foreign key must not be NULL: {line}");
        assert!(pks.contains(fk), "fk {fk} must resolve to a customer pk");
        fk_rows += 1;
    }
    assert!(fk_rows > 0);
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn thousand_document_single_shape_corpus_synthesizes_exactly_once() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let mix_one = CorpusMix {
        seed: 9,
        docs: 1,
        malformed_pct: 0,
        promo_pct: 0,
    };
    let mix_all = CorpusMix {
        docs: 1000,
        ..mix_one
    };
    let one = mixed_corpus(&mix_one);
    let all = mixed_corpus(&mix_all);
    let job = mixer_job_with(0, 128);

    let before = mitra::trace::snapshot();
    let dir_one = temp_dir("shape-one");
    let report_one = run(&job, &one.text, &dir_one).unwrap();
    let mid = mitra::trace::snapshot();
    let dir_all = temp_dir("shape-all");
    let report_all = run(&job, &all.text, &dir_all).unwrap();
    let after = mitra::trace::snapshot();

    assert_eq!(report_one.shapes, 1);
    assert_eq!(report_all.shapes, 1);
    assert_eq!(report_all.docs, 1000);
    assert_eq!(report_all.ok_docs, 1000);
    assert_eq!(
        report_all.programs_synthesized, 2,
        "one synthesis per oracle table for the single shape"
    );

    // Documents 0 of both corpora are identical (same (seed, index) stream),
    // so if the 1000-document corpus synthesized only once its candidate fuel
    // equals the 1-document corpus's exactly.
    let examined_one = mid.delta(&before).counter("synth.candidates.examined");
    let examined_all = after.delta(&mid).counter("synth.candidates.examined");
    assert!(examined_one > 0, "synthesis must examine candidates");
    assert_eq!(
        examined_all, examined_one,
        "1000-document corpus must spend the same synthesis fuel as 1 document"
    );
    assert_eq!(
        after.delta(&mid).counter("cache.shape_programs.insert"),
        1,
        "exactly one shape entered the program cache"
    );
    std::fs::remove_dir_all(&dir_one).ok();
    std::fs::remove_dir_all(&dir_all).ok();
}
