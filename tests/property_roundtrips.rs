//! Property-based integration tests: parser round-trips and execution-engine
//! equivalence over randomly generated documents and programs.

use mitra::dsl::ast::{
    ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, TableExtractor,
};
use mitra::dsl::eval::eval_program;
use mitra::dsl::validate::validate_against;
use mitra::dsl::{Program, Value};
use mitra::hdt::html::parse_html;
use mitra::hdt::{parse_json, parse_xml, Hdt, JsonValue};
use mitra::migrate::query::run_query;
use mitra::migrate::{Column, Database, Schema, TableSchema};
use mitra::synth::exec::execute;
use proptest::prelude::*;

/// Strategy for arbitrary JSON values of bounded depth.
fn json_value(depth: u32) -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-1000i64..1000).prop_map(|i| JsonValue::Number(i as f64)),
        "[a-zA-Z0-9 _-]{0,12}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(JsonValue::Object),
        ]
    })
}

/// Strategy for small random trees built through the builder API.
fn random_tree() -> impl Strategy<Value = Hdt> {
    // Tags drawn from a small alphabet so that structure repeats and extractors match.
    let ops = prop::collection::vec((0u8..3, 0usize..4, 0usize..50), 1..40);
    ops.prop_map(|ops| {
        let tags = ["item", "group", "entry", "field"];
        let mut tree = Hdt::with_root("root");
        let mut stack = vec![tree.root()];
        for (kind, tag_idx, val) in ops {
            match kind {
                0 => {
                    let id = tree.add_child(*stack.last().unwrap(), tags[tag_idx], None);
                    stack.push(id);
                }
                1 => {
                    tree.add_child(*stack.last().unwrap(), tags[tag_idx], Some(val.to_string()));
                }
                _ => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
            }
        }
        tree
    })
}

/// Strategy for simple programs over the random-tree tag alphabet.
fn random_program() -> impl Strategy<Value = Program> {
    let tags = prop_oneof![
        Just("item".to_string()),
        Just("group".to_string()),
        Just("entry".to_string()),
        Just("field".to_string()),
    ];
    let extractor =
        prop::collection::vec((0u8..3, tags.clone(), 0usize..2), 1..3).prop_map(|steps| {
            let mut pi = ColumnExtractor::Input;
            for (kind, tag, pos) in steps {
                pi = match kind {
                    0 => ColumnExtractor::children(pi, tag),
                    1 => ColumnExtractor::pchildren(pi, tag, pos),
                    _ => ColumnExtractor::descendants(pi, tag),
                };
            }
            pi
        });
    (
        prop::collection::vec(extractor, 1..3),
        0usize..50,
        prop_oneof![
            Just(CompareOp::Eq),
            Just(CompareOp::Ne),
            Just(CompareOp::Lt),
            Just(CompareOp::Gt)
        ],
    )
        .prop_map(|(cols, constant, op)| {
            let arity = cols.len();
            let pred = Predicate::Compare {
                extractor: NodeExtractor::Id,
                index: arity - 1,
                op,
                rhs: Operand::Const(Value::int(constant as i64)),
            };
            Program::new(TableExtractor::new(cols), pred)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_pretty_roundtrip(value in json_value(3)) {
        let text = value.to_string_pretty();
        let reparsed = parse_json(&text).expect("pretty output parses");
        prop_assert_eq!(&reparsed, &value);
        let compact = value.to_string_compact();
        prop_assert_eq!(parse_json(&compact).expect("compact output parses"), value);
    }

    #[test]
    fn xml_roundtrip_of_generated_trees(tree in random_tree()) {
        // Serialize via the datagen helper and reparse through the XML plug-in; the
        // resulting HDT must have the same number of data leaves.
        let xml = mitra::datagen::corpus::hdt_to_xml_text(&tree);
        let doc = parse_xml(&xml).expect("generated XML parses");
        let reparsed = doc.to_hdt();
        prop_assert_eq!(
            reparsed.data_values().len(),
            tree.data_values().len()
        );
    }

    #[test]
    fn optimized_execution_agrees_with_naive_semantics(
        tree in random_tree(),
        program in random_program()
    ) {
        let naive = eval_program(&tree, &program).expect("random programs stay tiny");
        let fast = execute(&tree, &program);
        prop_assert!(naive.same_bag(&fast), "naive {} vs fast {}", naive.len(), fast.len());
    }

    #[test]
    fn generated_trees_always_validate(tree in random_tree()) {
        prop_assert!(tree.validate().is_ok());
    }

    #[test]
    fn parse_and_pretty_roundtrip_for_random_programs(program in random_program()) {
        // Printing a program in the paper's textual syntax and parsing it back must
        // yield a program with identical behaviour (same AST up to column names).
        let text = mitra::dsl::pretty::program(&program);
        let reparsed = mitra::dsl::parse::parse_program(&text).expect("pretty output parses");
        prop_assert_eq!(reparsed.extractor, program.extractor);
        prop_assert_eq!(reparsed.predicate, program.predicate);
    }

    #[test]
    fn random_programs_validate_cleanly_against_random_trees(
        tree in random_tree(),
        program in random_program()
    ) {
        // The generated programs stay within the tag alphabet and tuple arity, so the
        // validator must never report errors (warnings about missing tags are fine).
        let validation = validate_against(&program, &tree);
        prop_assert!(validation.is_valid(), "unexpected errors: {:?}", validation.errors());
    }

    #[test]
    fn html_parser_is_total_on_tagged_input(
        prefix in "[ a-zA-Z0-9>=\"']{0,40}",
        tag in "[a-z]{1,8}",
        body in "[ a-zA-Z0-9&;<]{0,30}"
    ) {
        // The lenient HTML parser must never panic, and any input whose first markup is
        // a well-formed opening tag must produce a document.  (A `<`-containing prefix
        // could swallow the tag as a bogus comment, browser-style, so the prefix stays
        // markup-free; hostile prefixes are covered by unit tests in the html module.)
        let html = format!("{prefix}<{tag}>{body}");
        let parsed = parse_html(&html);
        prop_assert!(parsed.is_ok(), "input with a tag must parse: {html}");
        // Whatever markup soup surrounded it, the parser produced a lowercase-named
        // element tree (the prefix may legitimately contribute the root element).
        let root = parsed.unwrap().root;
        prop_assert!(!root.name.is_empty());
        prop_assert!(root.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()
            || c == '-' || c == '_' || c == ':'));
    }

    #[test]
    fn sql_where_filter_matches_direct_evaluation(
        values in prop::collection::vec((0i64..100, 0i64..100), 1..40),
        threshold in 0i64..100
    ) {
        // A single-table WHERE query must return exactly the rows whose column passes
        // the comparison, in the original order.
        let schema = Schema::new().with_table(TableSchema::new(
            "t",
            vec![Column::integer("a"), Column::integer("b")],
        ));
        let mut db = Database::new(schema);
        for (a, b) in &values {
            db.insert("t", vec![Value::int(*a), Value::int(*b)]);
        }
        let sql = format!("SELECT a, b FROM t WHERE a >= {threshold}");
        let result = run_query(&db, &sql).expect("query runs");
        let expected: Vec<Vec<Value>> = values
            .iter()
            .filter(|(a, _)| *a >= threshold)
            .map(|(a, b)| vec![Value::int(*a), Value::int(*b)])
            .collect();
        prop_assert_eq!(result.rows, expected);

        // COUNT(*) agrees with the filtered row count.
        let count_sql = format!("SELECT COUNT(*) FROM t WHERE a >= {threshold}");
        let count = run_query(&db, &count_sql).expect("count runs");
        let expected_count = values.iter().filter(|(a, _)| *a >= threshold).count() as i64;
        prop_assert_eq!(count.rows[0][0].clone(), Value::int(expected_count));
    }
}
