//! Differential tests for the query planner and physical-operator layer:
//!
//! * on random trees, every program in a fixed operator matrix (scans, interval
//!   joins, hash joins on values and on derived nodes, cross products, pushed-down
//!   filters, residual clauses) must produce tables **byte-identical** to the kept
//!   pre-planner progressive join, and bag-equal to the naive cross-product
//!   evaluator — byte-identical to it too whenever the legacy join order is the
//!   identity permutation (then the two emission orders provably coincide);
//! * the planner's output must be byte-identical at 1 and 4 worker threads on a
//!   workload large enough to cross the parallel residual-filter threshold;
//! * `Plan::explain` output is snapshot-pinned for the synthesized
//!   motivating-example program and for a synthesized MONDIAL table, so `--explain`
//!   stays stable unless the plan genuinely changes.

use mitra::dsl::ast::{
    ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, Program, TableExtractor,
};
use mitra::dsl::eval::{eval_program_with, EvalLimits};
use mitra::dsl::Value;
use mitra::hdt::generate::social_network;
use mitra::hdt::Hdt;
use mitra::synth::exec::{execute, execute_progressive, legacy_order, plan, plan_with_tree};
use mitra::synth::synthesize::{learn_transformation, Example, SynthConfig};
use mitra_datagen::datasets::{all_datasets, dataset_synth_config};
use mitra_datagen::social;
use proptest::prelude::*;

/// Strategy for small random trees mixing internal nodes and numeric leaves over a
/// fixed tag alphabet, so the operator matrix below always has something to chew on.
fn random_tree() -> impl Strategy<Value = Hdt> {
    let ops = prop::collection::vec((0u8..3, 0usize..4, 0usize..9), 1..40);
    ops.prop_map(|ops| {
        let tags = ["item", "group", "entry", "field"];
        let mut tree = Hdt::with_root("root");
        let mut stack = vec![tree.root()];
        for (kind, tag_idx, val) in ops {
            let top = *stack.last().unwrap();
            match kind {
                0 => {
                    let id = tree.add_child(top, tags[tag_idx], None);
                    stack.push(id);
                }
                1 => {
                    tree.add_child(top, tags[tag_idx], Some(val.to_string()));
                }
                _ => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
            }
        }
        tree
    })
}

fn leaf_cmp(index: usize, op: CompareOp, k: i64) -> Predicate {
    Predicate::Compare {
        extractor: NodeExtractor::Id,
        index,
        op,
        rhs: Operand::Const(Value::int(k)),
    }
}

fn col_join(
    left: NodeExtractor,
    left_col: usize,
    right: NodeExtractor,
    right_col: usize,
) -> Predicate {
    Predicate::Compare {
        extractor: left,
        index: left_col,
        op: CompareOp::Eq,
        rhs: Operand::Column {
            extractor: right,
            index: right_col,
        },
    }
}

/// A fixed set of programs covering every physical operator and every predicate
/// decomposition path in the planner.
fn operator_matrix() -> Vec<Program> {
    use ColumnExtractor as CE;
    let d = |t: &str| CE::descendants(CE::Input, t);
    let item = CE::children(CE::Input, "item");
    let child_field = NodeExtractor::child(NodeExtractor::Id, "field", 0);
    vec![
        // Scan with a pushed-down constant filter on leaf values.
        Program::new(
            TableExtractor::new(vec![d("field")]),
            leaf_cmp(0, CompareOp::Lt, 5),
        ),
        // Interval join: the new column's extractor is a pure parent chain.
        Program::new(
            TableExtractor::new(vec![d("item"), d("entry")]),
            col_join(
                NodeExtractor::Id,
                0,
                NodeExtractor::parent(NodeExtractor::Id),
                1,
            ),
        ),
        // Hash join on leaf values (interned Data keys).
        Program::new(
            TableExtractor::new(vec![d("field"), d("field")]),
            col_join(NodeExtractor::Id, 0, NodeExtractor::Id, 1),
        ),
        // Hash join through a child extractor (stays a hash join, never interval).
        Program::new(
            TableExtractor::new(vec![d("item"), d("group")]),
            col_join(child_field.clone(), 0, child_field.clone(), 1),
        ),
        // Pure cross product.
        Program::new(
            TableExtractor::new(vec![item.clone(), d("group")]),
            Predicate::True,
        ),
        // Join (0,2) with a cross-producted middle column: legacy order [0, 2, 1].
        Program::new(
            TableExtractor::new(vec![d("item"), d("group"), d("item")]),
            col_join(NodeExtractor::Id, 0, NodeExtractor::Id, 2),
        ),
        // Residual clause spanning both columns (a true disjunction, not pushable).
        Program::new(
            TableExtractor::new(vec![d("item"), d("field")]),
            Predicate::or(
                leaf_cmp(1, CompareOp::Lt, 4),
                col_join(child_field.clone(), 0, NodeExtractor::Id, 1),
            ),
        ),
        // Negated pushed-down filter plus a residual disjunction.
        Program::new(
            TableExtractor::new(vec![d("field"), d("entry")]),
            Predicate::and(
                Predicate::not(leaf_cmp(0, CompareOp::Eq, 3)),
                Predicate::or(leaf_cmp(0, CompareOp::Gt, 1), leaf_cmp(1, CompareOp::Ne, 2)),
            ),
        ),
        // Same-column extractor comparison: pushed down, not a join.
        Program::new(
            TableExtractor::new(vec![d("group")]),
            col_join(
                child_field,
                0,
                NodeExtractor::child(NodeExtractor::Id, "entry", 0),
                0,
            ),
        ),
        // Unsatisfiable predicate: every engine must emit the empty table.
        Program::new(
            TableExtractor::new(vec![item, d("entry")]),
            Predicate::False,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planner_agrees_with_progressive_and_naive(tree in random_tree()) {
        for (i, program) in operator_matrix().iter().enumerate() {
            let fast = execute(&tree, program);
            let reference = execute_progressive(&tree, program);
            prop_assert!(
                fast.to_csv() == reference.to_csv(),
                "program {} diverged from the progressive reference", i
            );
            let naive = eval_program_with(&tree, program, &EvalLimits::with_max_rows(usize::MAX))
                .expect("naive evaluation succeeds");
            prop_assert!(
                fast.same_bag(&naive),
                "program {} is not bag-equal to the naive evaluator", i
            );
            // When the legacy order is the identity permutation, the progressive
            // emission order coincides with the naive mixed-radix order, so the
            // tables must be byte-identical, not merely bag-equal.
            let p = plan(program);
            let arity = program.arity();
            if legacy_order(arity, &p.joins) == (0..arity).collect::<Vec<_>>() {
                prop_assert!(
                    fast.to_csv() == naive.to_csv(),
                    "program {} diverged from the naive order despite identity legacy order", i
                );
            }
        }
    }
}

#[test]
fn planner_output_is_identical_at_1_and_4_threads() {
    // 150 × 150 descendants cross product = 22_500 intermediate tuples, above the
    // 8192-tuple parallel residual-filter threshold, with a two-column residual
    // clause so the parallel filter actually runs.
    let tree = social_network(150, 1);
    let program = Program::new(
        TableExtractor::new(vec![
            ColumnExtractor::descendants(ColumnExtractor::Input, "fid"),
            ColumnExtractor::descendants(ColumnExtractor::Input, "years"),
        ]),
        Predicate::or(
            leaf_cmp(0, CompareOp::Lt, 70),
            leaf_cmp(1, CompareOp::Gt, 1200),
        ),
    );
    mitra_pool::set_threads(1);
    let sequential = execute(&tree, &program);
    mitra_pool::set_threads(4);
    let parallel = execute(&tree, &program);
    mitra_pool::set_threads(0);
    assert!(
        sequential.len() > 8192,
        "workload too small to exercise the parallel path"
    );
    assert_eq!(sequential.to_csv(), parallel.to_csv());
}

#[test]
fn explain_snapshot_motivating_example() {
    let example = social::training_example();
    let synthesis =
        learn_transformation(&[example], &SynthConfig::default()).expect("synthesis succeeds");
    let tree = social_network(5, 2);
    let text = plan_with_tree(&synthesis.program, &tree).explain(&synthesis.program);
    let expected = "\
plan: 3 column(s), 2 join constraint(s), 0 pushed-down filter(s)
  1. scan         t[0] := descendants(s, name), est 5
  2. interval-join t[2] := descendants(s, years) inside subtree of ((\\n.parent(n)) t[0]) at depth +3, est 10
  3. hash-join    t[1] := descendants(s, name) on ((\\n.child(parent(n), id, 0)) t[1]) = ((\\n.child(parent(n), fid, 0)) t[2]), est 5
  residual: none
  output: rows sorted by column positions in order [0, 2, 1]
";
    assert_eq!(text, expected, "\n--- explain output ---\n{text}");
}

#[test]
fn explain_snapshot_mondial_province() {
    let spec = all_datasets()
        .into_iter()
        .find(|s| s.name == "MONDIAL")
        .expect("MONDIAL spec exists");
    let (tree, expected_tables) = spec.generate(2);
    let output = expected_tables
        .get("province")
        .expect("province table exists")
        .clone();
    let example = Example::new(tree.clone(), output);
    let synthesis =
        learn_transformation(&[example], &dataset_synth_config()).expect("synthesis succeeds");
    let text = plan_with_tree(&synthesis.program, &tree).explain(&synthesis.program);
    let expected = "\
plan: 5 column(s), 4 join constraint(s), 0 pushed-down filter(s)
  1. scan         t[0] := descendants(s, country_code), est 2
  2. interval-join t[1] := descendants(s, province_name) inside subtree of ((\\n.parent(n)) t[0]) at depth +2, est 4
  3. hash-join    t[2] := descendants(s, province_capital) on ((\\n.child(parent(n), province_name, 0)) t[2]) = ((\\n.n) t[1]), est 4
  4. hash-join    t[3] := descendants(s, province_area) on ((\\n.child(parent(n), province_name, 0)) t[3]) = ((\\n.n) t[1]), est 4
  5. hash-join    t[4] := descendants(s, city_population) on ((\\n.n) t[4]) = ((\\n.child(parent(n), province_population, 0)) t[1]), est 4
  residual: none
  output: rows sorted by column positions in order [0, 1, 2, 3, 4]
";
    assert_eq!(text, expected, "\n--- explain output ---\n{text}");
}
