//! Observability must be free of observer effects.
//!
//! The trace layer records spans and metrics into process-global state, so these
//! tests drive two end-to-end properties through the facade:
//!
//! * **determinism** — synthesis returns byte-identical programs and costs with
//!   tracing fully on (`full`) and fully off, at 1 and at 4 worker threads.  The
//!   instrumentation may cost time but must never change results;
//! * **export round-trip** — the Chrome trace-event document produced from a real
//!   migration run is valid JSON with balanced B/E span pairs and per-thread
//!   monotone timestamps, i.e. something Perfetto will actually load.
//!
//! The trace mode is a process-global `AtomicU8`, so every test that flips it
//! holds `MODE_LOCK` and restores the summary default before releasing it.

use mitra::dsl::{pretty, Table, Value};
use mitra::hdt::generate::{social_network, social_network_rows};
use mitra::hdt::JsonValue;
use mitra::synth::synthesize::{learn_transformation, Example, SynthConfig};
use mitra::trace::{self, export, Phase, TraceMode};
use std::sync::Mutex;

/// Serializes tests that flip the process-global trace mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn config(threads: usize) -> SynthConfig {
    SynthConfig {
        timeout: None,
        max_column_candidates: 8,
        max_table_candidates: 16,
        threads,
        ..Default::default()
    }
}

/// The motivating example as a synthesis task (tree + expected output table).
fn motivating_example() -> Example {
    let tree = social_network(3, 1);
    let rows = social_network_rows(3, 1);
    let mut output = Table::new(vec![
        "Person".to_string(),
        "Friend-with".to_string(),
        "years".to_string(),
    ]);
    for r in rows {
        output.push(r.iter().map(|s| Value::from_data(s)).collect());
    }
    Example::new(tree, output)
}

#[test]
fn trace_mode_never_changes_synthesis_results() {
    let _guard = MODE_LOCK.lock().unwrap();
    let example = motivating_example();
    let examples = std::slice::from_ref(&example);

    let mut baselines: Vec<(usize, String, String)> = Vec::new();
    for threads in [1usize, 4] {
        trace::set_mode(TraceMode::Off);
        let off = learn_transformation(examples, &config(threads)).expect("synthesis (off)");
        trace::set_mode(TraceMode::Full);
        trace::clear_events();
        let full = learn_transformation(examples, &config(threads)).expect("synthesis (full)");
        let events = trace::take_events();
        trace::set_mode(TraceMode::Summary);

        assert_eq!(
            pretty::program(&off.program),
            pretty::program(&full.program),
            "tracing changed the synthesized program at {threads} threads"
        );
        assert_eq!(off.cost, full.cost);
        assert_eq!(off.candidates_tried, full.candidates_tried);
        assert_eq!(off.programs_found, full.programs_found);
        // Full mode actually recorded the search; off mode stays silent by design.
        assert!(
            events.iter().any(|e| e.name == "learn_transformation"),
            "full mode recorded no learn_transformation span"
        );
        baselines.push((
            threads,
            pretty::program(&off.program),
            format!("{:?}", off.cost),
        ));
    }
    // And the thread counts agree with each other, traced or not.
    assert_eq!(baselines[0].1, baselines[1].1);
    assert_eq!(baselines[0].2, baselines[1].2);
}

#[test]
fn chrome_trace_export_round_trips_through_the_json_parser() {
    let _guard = MODE_LOCK.lock().unwrap();
    trace::set_mode(TraceMode::Full);
    trace::clear_events();
    let example = motivating_example();
    learn_transformation(std::slice::from_ref(&example), &config(4)).expect("synthesis");
    let events = trace::take_events();
    trace::set_mode(TraceMode::Summary);
    assert!(!events.is_empty(), "full mode produced no events");

    let doc = export::chrome_trace(&events);
    // Valid JSON: the exporter's output must parse with the repo's own parser.
    let parsed = mitra::hdt::parse_json(&doc).expect("chrome trace is valid JSON");
    let JsonValue::Object(fields) = &parsed else {
        panic!("chrome trace root is not an object");
    };
    let trace_events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents field");
    let JsonValue::Array(items) = trace_events else {
        panic!("traceEvents is not an array");
    };
    assert!(!items.is_empty());

    // Balanced B/E and monotone timestamps, checked per thread lane straight on
    // the event buffer the document was generated from.
    let mut stacks: std::collections::HashMap<u32, Vec<&'static str>> = Default::default();
    let mut last_ts: std::collections::HashMap<u32, u64> = Default::default();
    for e in &events {
        let prev = last_ts.entry(e.tid).or_insert(0);
        assert!(
            e.ts_ns >= *prev,
            "timestamps regressed on tid {}: {} after {}",
            e.tid,
            e.ts_ns,
            prev
        );
        *prev = e.ts_ns;
        match e.phase {
            Phase::Begin => stacks.entry(e.tid).or_default().push(e.name),
            Phase::End => {
                let open = stacks.entry(e.tid).or_default().pop();
                assert_eq!(open, Some(e.name), "unbalanced span end on tid {}", e.tid);
            }
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }

    // The serialized document mirrors the buffer: every non-metadata JSON event
    // carries the Chrome phase letters and microsecond timestamps.
    let span_items = items
        .iter()
        .filter_map(|item| {
            let JsonValue::Object(ev) = item else {
                return None;
            };
            let get = |k: &str| ev.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            match get("ph") {
                Some(JsonValue::String(ph)) if ph == "B" || ph == "E" => Some(()),
                _ => None,
            }
        })
        .count();
    let buffer_spans = events
        .iter()
        .filter(|e| matches!(e.phase, Phase::Begin | Phase::End))
        .count();
    assert_eq!(span_items, buffer_spans);
}
