//! Integration test for experiment E4 (DESIGN.md): the Section 2 motivating example,
//! exercised end to end across the hdt, dsl, synth and codegen crates through the
//! public `mitra` facade.

use mitra::codegen::Backend;
use mitra::datagen::social;
use mitra::synth::exec::execute;
use mitra::synth::synthesize::{learn_transformation, SynthConfig};

#[test]
fn motivating_example_synthesizes_and_generalizes() {
    let example = social::training_example();
    let synthesis = learn_transformation(std::slice::from_ref(&example), &SynthConfig::default())
        .expect("synthesis");

    // The program reproduces the training example exactly.
    let out = execute(&example.tree, &synthesis.program);
    assert!(out.same_bag(&example.output));

    // ... and generalizes to larger documents it has never seen.
    for (persons, friends) in [(6, 1), (10, 2), (25, 3)] {
        let doc = social::social_network(persons, friends);
        let out = execute(&doc, &synthesis.program);
        let expected = social::expected_table(persons, friends);
        assert!(
            out.same_bag(&expected),
            "program failed to generalize to ({persons}, {friends})"
        );
    }

    // The program has the Figure 3 shape: three columns, at least two join atoms.
    assert_eq!(synthesis.program.arity(), 3);
    assert!(synthesis.cost.atoms >= 2);
}

#[test]
fn motivating_example_emits_both_backends() {
    let example = social::training_example();
    let synthesis = learn_transformation(&[example], &SynthConfig::default()).expect("synthesis");
    let mitra = mitra::Mitra::new();
    let xslt = mitra.emit(&synthesis.program, Backend::Xslt);
    let js = mitra.emit(&synthesis.program, Backend::JavaScript);
    assert!(xslt.source.contains("xsl:for-each"));
    assert!(js.source.contains("for (const c0"));
    assert!(xslt.loc() > 0 && js.loc() > 0);
}

#[test]
fn motivating_example_through_xml_plugin() {
    // Parse the Figure 2a-style attribute XML, then go through the full
    // text -> HDT -> synthesis -> execution pipeline via the facade.  The
    // attribute-style rendering matches the paper's figure: ids, names, fids and years
    // are attributes, so the Section 3 mapping produces the same HDT shape as the
    // programmatic generator and the Figure 3 program (node extractors of depth three)
    // is learnable with the default configuration.
    let xml = social::social_network_xml_attrs(3, 1);
    let expected = social::expected_table(3, 1);
    let csv = expected.to_csv();
    let mitra = mitra::Mitra::new();
    let synthesis = mitra
        .synthesize_from_xml(&[(xml.as_str(), csv.as_str())])
        .expect("synthesis from XML text");

    // The program reproduces the training example through the XML plug-in...
    let out = mitra
        .run_on_xml(&synthesis.program, &xml)
        .expect("run on training doc");
    assert!(out.same_bag(&expected));

    // ... and generalizes to a much larger document, including more friends per person.
    let big_xml = social::social_network_xml_attrs(10, 2);
    let out = mitra.run_on_xml(&synthesis.program, &big_xml).expect("run");
    assert!(out.same_bag(&social::expected_table(10, 2)));
}
