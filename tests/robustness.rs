//! Robustness of the fault-tolerance layer (DESIGN.md §10).
//!
//! Three contracts, all deterministic:
//!
//! 1. Every file in `tests/fixtures/malformed/` — truncated, unbalanced,
//!    invalid-UTF-8 and adversarially deep documents — yields a **typed error**,
//!    never a panic and never a stack overflow.
//! 2. A multi-table migration with one poisoned table (an injected worker panic)
//!    still populates the sibling tables and reports the poisoned one as
//!    `failed`; foreign-key dependents of a failed table are `skipped`, not
//!    silently empty.
//! 3. Degraded reports are byte-identical at 1 vs 4 synthesis threads, both for
//!    an injected panic and for an exhausted fuel budget — degradation is part
//!    of the determinism contract, not an excuse to break it.

use mitra::datagen::fuzz::migration_scenario;
use mitra::hdt::{html::html_to_hdt, json::json_to_hdt, xml::xml_to_hdt, HdtError};
use mitra::migrate::{MigrationError, TableOutcome};
use mitra::synth::budget::Budget;
use mitra::trace::fault::{set_fault, FaultSpec};
use std::path::{Path, PathBuf};

/// Parse stack head-room for the depth-limit fixtures: the guard caps recursion
/// at 10k frames, which fits easily in 64 MiB even in debug builds, so a panic
/// here means the guard regressed — not that the harness was too stingy.
const PARSE_STACK: usize = 64 << 20;

fn malformed_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("malformed")
}

/// Parses one document in a dedicated big-stack thread, converting a panic (or
/// stack overflow short of an abort) into a test failure with the file name.
fn parse_in_thread(name: String, bytes: Vec<u8>) -> Result<(), String> {
    let worker_name = name.clone();
    std::thread::Builder::new()
        .name(format!("parse-{name}"))
        .stack_size(PARSE_STACK)
        .spawn(move || {
            let name = worker_name;
            // Invalid UTF-8 is rejected at the decode layer with a typed error;
            // that counts as a graceful rejection for binary fixtures.
            let Ok(text) = std::str::from_utf8(&bytes) else {
                return Err("invalid UTF-8".to_string());
            };
            let parsed = match name.rsplit('.').next() {
                Some("json") => json_to_hdt(text),
                Some("html") | Some("htm") => html_to_hdt(text),
                _ => xml_to_hdt(text),
            };
            parsed.map(|_| ()).map_err(|e: HdtError| e.to_string())
        })
        .expect("spawn parser thread")
        .join()
        .unwrap_or_else(|_| panic!("parser PANICKED on fixture `{name}`"))
}

#[test]
fn every_malformed_fixture_is_a_typed_error() {
    let dir = malformed_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/fixtures/malformed must exist")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 10,
        "expected the committed corpus, found {} files in {}",
        entries.len(),
        dir.display()
    );
    for path in entries {
        let name = path
            .file_name()
            .expect("fixture file name")
            .to_string_lossy()
            .into_owned();
        let bytes = std::fs::read(&path).expect("readable fixture");
        match parse_in_thread(name.clone(), bytes) {
            Err(message) => {
                assert!(!message.is_empty(), "`{name}` produced an empty error");
            }
            Ok(()) => panic!("fixture `{name}` parsed successfully — corpus no longer malformed"),
        }
    }
}

#[test]
fn deep_fixtures_report_the_depth_limit() {
    // The three `deep.*` fixtures nest one level past MAX_PARSE_DEPTH; the guard
    // must identify them as depth-limit breaches, not generic syntax errors.
    for name in ["deep.xml", "deep.json", "deep.html"] {
        let bytes = std::fs::read(malformed_dir().join(name)).expect("readable fixture");
        let message =
            parse_in_thread(name.to_string(), bytes).expect_err("deep fixtures must be rejected");
        assert!(
            message.contains("depth limit"),
            "`{name}`: expected a depth-limit error, got: {message}"
        );
    }
}

#[test]
fn poisoned_table_degrades_alone_and_identically_at_any_thread_count() {
    // Serialize the two fault-injecting sections inside ONE test: the installed
    // fault is process-global, so two tests racing on it would be flaky.
    const SEED: u64 = 0x0B_0557;

    // (a) One injected worker panic: the poisoned table fails, every sibling
    // still populates, and the degradation summary is byte-identical at 1 vs 4
    // synthesis threads.
    let mut summaries = Vec::new();
    for threads in [1usize, 4] {
        set_fault(FaultSpec::parse("panic:migrate.table:1"));
        let (doc, mut plan) = migration_scenario(SEED, 4);
        plan.synth_config.threads = threads;
        let report = plan.run(&doc).expect("non-strict runs degrade, not abort");
        set_fault(None);

        let d = report.degradation();
        assert_eq!((d.ok, d.failed), (3, 1), "{}", report.summary_json());
        assert!(
            matches!(
                report.tables[1].outcome,
                TableOutcome::Failed(MigrationError::Panicked { .. })
            ),
            "table 1 outcome: {}",
            report.tables[1].outcome
        );
        for (i, table) in report.tables.iter().enumerate() {
            if i != 1 {
                assert!(table.outcome.is_ok(), "sibling {i}: {}", table.outcome);
                assert!(table.rows > 0, "sibling {i} produced no rows");
            }
        }
        summaries.push(report.summary_json());
    }
    assert_eq!(
        summaries[0], summaries[1],
        "panic degradation must not depend on threads"
    );

    // (b) A fuel budget that exhausts mid-search: same determinism contract.
    let mut summaries = Vec::new();
    for threads in [1usize, 4] {
        let (doc, mut plan) = migration_scenario(SEED, 4);
        plan.synth_config.threads = threads;
        plan.synth_config.budget = Budget {
            max_candidates: Some(0),
            ..Budget::UNLIMITED
        };
        let report = plan.run(&doc).expect("non-strict runs degrade, not abort");
        assert_eq!(
            report.degradation().budget_exhausted,
            4,
            "{}",
            report.summary_json()
        );
        summaries.push(report.summary_json());
    }
    assert_eq!(
        summaries[0], summaries[1],
        "budget degradation must not depend on threads"
    );

    // (c) Strict mode restores abort-on-first-error for the same poisoned plan.
    set_fault(FaultSpec::parse("panic:migrate.table:1"));
    let (doc, plan) = migration_scenario(SEED, 4);
    let strict = plan.with_strict(true);
    let err = strict.run(&doc);
    set_fault(None);
    assert!(
        matches!(err, Err(MigrationError::Panicked { .. })),
        "strict mode must surface the panic as an error: {err:?}"
    );
}
