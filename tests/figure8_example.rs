//! Integration test for experiment E5 (DESIGN.md): the Example 3 / Figure 8 task — map
//! the text of every object with id < 20 to the text of its directly nested object.

use mitra::dsl::eval::eval_program;
use mitra::dsl::Table;
use mitra::hdt::generate::nested_objects_rich;
use mitra::synth::synthesize::{learn_transformation, Example, SynthConfig};

/// The Figure 8 example: two qualifying outer objects (ids 10 and 15), two
/// non-qualifying ones (ids 25 and 30), each wrapping one nested object.
fn figure8_example() -> Example {
    let tree = nested_objects_rich();
    let output = Table::from_rows(
        &["outer", "inner"],
        &[&["outer-a", "inner-a"], &["outer-b", "inner-b"]],
    );
    Example::new(tree, output)
}

#[test]
fn figure8_task_synthesizes_with_constant_and_structural_predicates() {
    let example = figure8_example();
    let synthesis = learn_transformation(std::slice::from_ref(&example), &SynthConfig::default())
        .expect("synthesis succeeds");
    let result = eval_program(&example.tree, &synthesis.program).unwrap();
    assert!(result.same_bag(&example.output));

    // The synthesized predicate needs at least two atoms, as in the paper's program:
    // an id-threshold constraint plus the nesting (parent/grandparent) constraint.
    // Neither alone separates the positive tuples from the spurious ones.
    assert!(synthesis.cost.atoms >= 2, "cost: {:?}", synthesis.cost);
}

#[test]
fn figure8_program_respects_threshold_on_new_data() {
    // Build a larger document with both qualifying and non-qualifying outer objects and
    // check the threshold semantics carry over.
    use mitra::hdt::HdtBuilder;
    let synthesis =
        learn_transformation(&[figure8_example()], &SynthConfig::default()).expect("synthesis");

    let bigger = HdtBuilder::new("root")
        .open("object")
        .leaf("id", "5")
        .leaf("text", "keep-1")
        .open("object")
        .leaf("id", "99")
        .leaf("text", "nested-1")
        .close()
        .close()
        .open("object")
        .leaf("id", "40")
        .leaf("text", "drop-1")
        .open("object")
        .leaf("id", "98")
        .leaf("text", "nested-2")
        .close()
        .close()
        .build();
    let result = eval_program(&bigger, &synthesis.program).unwrap();
    // Whatever exact predicate was learned, the row for the qualifying outer object
    // must be present and the non-qualifying one absent.
    let rendered: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.render()).collect())
        .collect();
    assert!(
        rendered.contains(&vec!["keep-1".to_string(), "nested-1".to_string()]),
        "missing qualifying row; got {rendered:?}"
    );
    assert!(
        !rendered.iter().any(|r| r[0] == "drop-1"),
        "non-qualifying outer object leaked through; got {rendered:?}"
    );
}
