//! Cross-crate integration test over a sample of the benchmark corpus (experiment E1):
//! a slice of tasks from every category must synthesize, reproduce their examples, and
//! produce emitting-ready artifacts.  The full 98-task sweep lives in the bench
//! harness (`cargo run -p mitra-bench --bin table1`).

use mitra::codegen::{generate, Backend};
use mitra::datagen::{generate_corpus, Category, DocFormat};
use mitra::synth::exec::execute;
use mitra::synth::synthesize::{learn_transformation, SynthConfig};

/// Unoptimized (dev-profile) synthesis is one to two orders of magnitude slower than
/// release, so the dev run covers a reduced slice; `cargo test --release` covers the
/// full matrix.
const FULL_COVERAGE: bool = !cfg!(debug_assertions);

#[test]
fn one_task_per_category_and_format_synthesizes() {
    let tasks = generate_corpus();
    let mut covered: Vec<(DocFormat, Category)> = Vec::new();
    let config = SynthConfig::default();
    let target_cells = if FULL_COVERAGE { 8 } else { 2 };
    for task in &tasks {
        let key = (task.format, task.category);
        if !task.expressible || covered.contains(&key) || covered.len() >= target_cells {
            continue;
        }
        covered.push(key);
        let synthesis = learn_transformation(std::slice::from_ref(&task.example), &config)
            .unwrap_or_else(|e| panic!("task {} failed to synthesize: {e}", task.name));
        let out = execute(&task.example.tree, &synthesis.program);
        assert!(
            out.same_bag(&task.example.output),
            "task {} output mismatch",
            task.name
        );
        // The appropriate backend must produce non-trivial code.
        let backend = match task.format {
            DocFormat::Xml => Backend::Xslt,
            DocFormat::Json => Backend::JavaScript,
        };
        assert!(generate(&synthesis.program, backend).loc() > 0);
    }
    // 2 formats x 4 categories in release; a 2-cell smoke slice in dev builds.
    assert_eq!(
        covered.len(),
        target_cells,
        "expected to cover every targeted (format, category) cell"
    );
}

#[test]
fn synthesized_programs_generalize_to_scaled_documents() {
    // For a handful of expressible tasks, run the synthesized program on a 5x larger
    // document of the same shape and check it still produces the right number of rows
    // per record (structure-preserving generalization).
    let tasks = generate_corpus();
    let config = SynthConfig::default();
    let sample = if FULL_COVERAGE { 4 } else { 1 };
    for task in tasks
        .iter()
        .filter(|t| t.expressible)
        .step_by(23)
        .take(sample)
    {
        let synthesis =
            learn_transformation(std::slice::from_ref(&task.example), &config).expect("synthesis");
        let small_rows = execute(&task.example.tree, &synthesis.program).len();
        let big = task.scaled_document(5);
        let big_rows = execute(&big, &synthesis.program).len();
        assert!(
            big_rows > small_rows,
            "task {}: scaled document should produce more rows ({big_rows} vs {small_rows})",
            task.name
        );
    }
}
