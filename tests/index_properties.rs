//! Property tests for the interned, indexed HDT arena:
//!
//! * the indexed `descendants_with_tag` / `children_with_tag` (pre-order range scan
//!   and children-by-tag map) must agree with the naive subtree/child-list traversals
//!   on random trees, for every node and every tag;
//! * the pre-order numbering must nest subtrees correctly;
//! * interning must round-trip every tag produced by the XML, JSON and HTML parsers.

use mitra::hdt::html::html_to_hdt;
use mitra::hdt::json::json_to_hdt;
use mitra::hdt::xml::xml_to_hdt;
use mitra::hdt::{Hdt, NodeId};
use mitra::intern;
use proptest::prelude::*;

/// Strategy for small random trees built through the arena mutators, mixing
/// automatic (`add_child`) and explicit (`add_child_with_pos`) position assignment
/// the way the JSON plug-in does.
fn random_tree() -> impl Strategy<Value = Hdt> {
    let ops = prop::collection::vec((0u8..4, 0usize..5, 0usize..50), 1..60);
    ops.prop_map(|ops| {
        let tags = ["item", "group", "entry", "field", "misc"];
        let mut tree = Hdt::with_root("root");
        let mut stack = vec![tree.root()];
        for (kind, tag_idx, val) in ops {
            let top = *stack.last().unwrap();
            match kind {
                0 => {
                    let id = tree.add_child(top, tags[tag_idx], None);
                    stack.push(id);
                }
                1 => {
                    tree.add_child(top, tags[tag_idx], Some(val.to_string()));
                }
                2 => {
                    // Interleave a query so the index gets built and then invalidated
                    // by the next mutation — the staleness path must stay correct.
                    let _ = tree.descendants_with_tag(top, tags[tag_idx]).len();
                }
                _ => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
            }
        }
        tree
    })
}

fn all_tags(tree: &Hdt) -> Vec<mitra::TagId> {
    let mut tags = tree.tags();
    // Also query a tag that never occurs in the tree: both implementations must
    // agree on the empty answer.
    tags.push(intern::intern("no-such-tag-anywhere"));
    tags
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_descendants_agree_with_naive_walk(tree in random_tree()) {
        for id in tree.ids() {
            for tag in all_tags(&tree) {
                let indexed: Vec<NodeId> = tree.descendants_with_tag(id, tag).to_vec();
                let naive = tree.descendants_with_tag_naive(id, tag);
                prop_assert!(
                    indexed == naive,
                    "descendants({}, {}) diverged: {:?} vs {:?}", id, tag, indexed, naive
                );
            }
        }
    }

    #[test]
    fn indexed_children_agree_with_naive_scan(tree in random_tree()) {
        for id in tree.ids() {
            for tag in all_tags(&tree) {
                let indexed: Vec<NodeId> = tree.children_with_tag(id, tag).to_vec();
                let naive = tree.children_with_tag_naive(id, tag);
                prop_assert!(
                    indexed == naive,
                    "children({}, {}) diverged: {:?} vs {:?}", id, tag, indexed, naive
                );
                // child() must agree with position-filtering the naive result.
                for pos in 0..3usize {
                    let via_child = tree.child(id, tag, pos);
                    let via_naive = naive.iter().copied().find(|c| tree.pos(*c) == pos);
                    prop_assert_eq!(via_child, via_naive);
                }
            }
        }
    }

    #[test]
    fn preorder_numbering_nests_subtrees(tree in random_tree()) {
        let order = tree.preorder();
        prop_assert_eq!(order.len(), tree.len());
        for id in tree.ids() {
            let lo = tree.preorder_number(id);
            let hi = tree.subtree_end(id);
            prop_assert!(lo < hi);
            // Every child's interval is strictly inside the parent's.
            for &c in tree.children(id) {
                prop_assert!(tree.preorder_number(c) > lo);
                prop_assert!(tree.subtree_end(c) <= hi);
            }
        }
        prop_assert_eq!(tree.subtree_end(tree.root()) as usize, tree.len());
    }

    #[test]
    fn mixed_pos_assignment_still_validates(tree in random_tree()) {
        prop_assert!(tree.validate().is_ok());
    }

    #[test]
    fn interning_roundtrips_xml_parser_tags(names in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..6)) {
        // Build an XML document whose element names are the random identifiers.
        let mut doc = String::from("<root>");
        for n in &names {
            doc.push_str(&format!("<{n} attr_{n}=\"v\">x</{n}>"));
        }
        doc.push_str("</root>");
        let tree = xml_to_hdt(&doc).expect("generated XML parses");
        // Every tag in the tree resolves back to a string that re-interns to the
        // same symbol, and the parsed element names are among them.
        for tag in tree.tags() {
            prop_assert_eq!(intern::intern(tag.as_str()), tag);
        }
        for n in &names {
            let sym = intern::intern(n);
            prop_assert!(tree.tags().contains(&sym), "tag {} lost in XML ingestion", n);
            let attr = intern::intern(&format!("attr_{n}"));
            prop_assert!(tree.tags().contains(&attr), "attribute tag attr_{} lost", n);
        }
    }

    #[test]
    fn interning_roundtrips_json_parser_tags(keys in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..6)) {
        let mut doc = String::from("{");
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!("\"{k}\": [1, 2]"));
        }
        doc.push('}');
        let tree = json_to_hdt(&doc).expect("generated JSON parses");
        for tag in tree.tags() {
            prop_assert_eq!(intern::intern(tag.as_str()), tag);
        }
        for k in &keys {
            prop_assert!(
                tree.tags().contains(&intern::intern(k)),
                "key {} lost in JSON ingestion", k
            );
        }
    }

    #[test]
    fn interning_roundtrips_html_parser_tags(names in prop::collection::vec("[a-z]{1,8}", 1..5)) {
        let mut doc = String::from("<html><body>");
        for n in &names {
            doc.push_str(&format!("<{n}>text</{n}>"));
        }
        doc.push_str("</body></html>");
        let tree = html_to_hdt(&doc).expect("generated HTML parses");
        for tag in tree.tags() {
            prop_assert_eq!(intern::intern(tag.as_str()), tag);
        }
        // The HTML parser lowercases names; ours are already lowercase.
        for n in &names {
            prop_assert!(
                tree.tags().contains(&intern::intern(n)),
                "element {} lost in HTML ingestion", n
            );
        }
    }
}
