//! Thread-count determinism of the parallel synthesizer.
//!
//! The worker pool merges per-worker results in canonical order (candidates by
//! enumeration index, migration tables by task order), so `learn_transformation`
//! must produce **byte-identical** programs — and identical executed tables — at
//! every thread count.  These tests drive the property on the motivating example
//! and on the same kind of random trees `tests/index_properties.rs` uses.

use mitra::dsl::eval::eval_program;
use mitra::dsl::{pretty, Table, Value};
use mitra::hdt::generate::{social_network, social_network_rows};
use mitra::hdt::Hdt;
use mitra::synth::synthesize::{learn_transformation, Example, SynthConfig, SynthError};
use proptest::prelude::*;

/// A synthesis configuration with explicit thread count and no wall-clock budget
/// (a timeout could fire on one run and not the other, which is scheduling noise,
/// not nondeterminism).
fn config(threads: usize) -> SynthConfig {
    SynthConfig {
        timeout: None,
        max_column_candidates: 8,
        max_table_candidates: 16,
        threads,
        ..Default::default()
    }
}

/// Runs synthesis at two thread counts and asserts equal outcomes: same error, or
/// the same pretty-printed program producing the same table on the example tree.
fn assert_deterministic(examples: &[Example], a: usize, b: usize) -> Result<(), TestCaseError> {
    let ra = learn_transformation(examples, &config(a));
    let rb = learn_transformation(examples, &config(b));
    match (&ra, &rb) {
        (Ok(sa), Ok(sb)) => {
            prop_assert!(
                pretty::program(&sa.program) == pretty::program(&sb.program),
                "programs diverged between {} and {} threads:\n{}\nvs\n{}",
                a,
                b,
                pretty::program(&sa.program),
                pretty::program(&sb.program)
            );
            prop_assert_eq!(sa.cost, sb.cost);
            prop_assert_eq!(sa.candidates_tried, sb.candidates_tried);
            prop_assert_eq!(sa.programs_found, sb.programs_found);
            for ex in examples {
                let ta = eval_program(&ex.tree, &sa.program).expect("program evaluates");
                let tb = eval_program(&ex.tree, &sb.program).expect("program evaluates");
                prop_assert_eq!(ta.rows, tb.rows);
            }
        }
        (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
        _ => prop_assert!(
            false,
            "one thread count succeeded and the other failed: {:?} vs {:?}",
            ra.as_ref().map(|s| s.programs_found),
            rb.as_ref().map(|s| s.programs_found)
        ),
    }
    Ok(())
}

#[test]
fn motivating_example_is_identical_across_thread_counts() {
    let tree = social_network(3, 1);
    let rows = social_network_rows(3, 1);
    let mut output = Table::new(vec![
        "Person".to_string(),
        "Friend-with".to_string(),
        "years".to_string(),
    ]);
    for r in rows {
        output.push(r.iter().map(|s| Value::from_data(s)).collect());
    }
    let examples = [Example::new(tree, output)];
    for threads in [2, 4, 8] {
        assert_deterministic(&examples, 1, threads).unwrap();
    }
}

#[test]
fn unsatisfiable_examples_fail_identically_across_thread_counts() {
    let ex = Example::new(
        social_network(2, 1),
        Table::from_rows(&["x"], &[&["value-not-in-the-tree"]]),
    );
    let seq = learn_transformation(std::slice::from_ref(&ex), &config(1)).unwrap_err();
    let par = learn_transformation(std::slice::from_ref(&ex), &config(4)).unwrap_err();
    assert_eq!(seq, par);
    assert_eq!(seq, SynthError::NoColumnExtractor(0));
}

/// Strategy for small random trees built through the arena mutators — the same
/// shape as `tests/index_properties.rs`, but leaves always carry data so output
/// examples can be derived from them.
fn random_tree() -> impl Strategy<Value = Hdt> {
    let ops = prop::collection::vec((0u8..3, 0usize..4, 0usize..9), 1..40);
    ops.prop_map(|ops| {
        let tags = ["item", "group", "entry", "field"];
        let mut tree = Hdt::with_root("root");
        let mut stack = vec![tree.root()];
        for (kind, tag_idx, val) in ops {
            let top = *stack.last().unwrap();
            match kind {
                0 => {
                    let id = tree.add_child(top, tags[tag_idx], None);
                    stack.push(id);
                }
                1 => {
                    tree.add_child(top, tags[tag_idx], Some(val.to_string()));
                }
                _ => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
            }
        }
        tree
    })
}

/// Derives a single-column output example from the data of every `field` leaf in
/// the tree (possibly empty — synthesis must then fail the same way everywhere).
fn field_output(tree: &Hdt) -> Table {
    let mut out = Table::new(vec!["field".to_string()]);
    for id in tree.descendants_with_tag(tree.root(), "field") {
        if let Some(d) = tree.data(*id) {
            out.push(vec![Value::from_data(d)]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_trees_synthesize_identically_at_1_and_4_threads(tree in random_tree()) {
        let output = field_output(&tree);
        let examples = [Example::new(tree, output)];
        assert_deterministic(&examples, 1, 4)?;
    }

    #[test]
    fn random_two_column_tasks_are_deterministic(tree in random_tree()) {
        // Pair every `field` value with itself: a 2-column task exercising the
        // candidate cartesian product and the predicate learner.
        let mut output = Table::new(vec!["a".to_string(), "b".to_string()]);
        for id in tree.descendants_with_tag(tree.root(), "field") {
            if let Some(d) = tree.data(*id) {
                output.push(vec![Value::from_data(d), Value::from_data(d)]);
            }
        }
        let examples = [Example::new(tree, output)];
        assert_deterministic(&examples, 1, 3)?;
    }
}
