//! Cross-crate integration test for the Table 2 scenario (experiment E2): an
//! example-driven migration of a dataset simulator into a full relational database,
//! with key constraints checked and SQL emitted.

use mitra::datagen::{imdb, yelp};
use mitra::migrate::sql::dump_sql;

#[test]
fn imdb_like_migration_produces_constrained_database() {
    let spec = imdb();
    // Restrict to a subset of tables to keep the integration test fast; the full
    // 9-table migration runs in the bench harness.
    let mut plan = spec.migration_plan();
    plan.tasks
        .retain(|t| ["person", "company", "movie_genre", "episode"].contains(&t.table.as_str()));
    let (document, expected) = spec.generate(6);
    let report = plan.run(&document).expect("migration succeeds");
    assert_eq!(report.tables.len(), 4);
    for table in &report.tables {
        assert_eq!(
            table.rows,
            expected[&table.table].len(),
            "row count mismatch for {}",
            table.table
        );
    }
    // Natural keys come from the data, so constraints must hold for populated tables.
    // (Foreign keys of tables we skipped are not checked because those tables are empty.)
    let sql = dump_sql(&report.database);
    assert!(sql.contains("CREATE TABLE \"person\""));
    assert!(sql.contains("INSERT INTO \"person\""));
}

#[test]
fn yelp_like_schema_matches_paper_shape_and_validates() {
    let spec = yelp();
    assert_eq!(spec.table_count(), 7);
    assert_eq!(spec.schema().total_columns(), 34);
    let plan = spec.migration_plan();
    plan.validate().expect("plan validates");
    // Generated documents are consistent with the expected tables used as examples.
    let (tree, tables) = spec.generate(3);
    tree.validate().unwrap();
    assert_eq!(
        tables.values().map(|t| t.len()).sum::<usize>(),
        spec.expected_rows(3)
    );
}
