//! # mitra — programming-by-example migration of hierarchical data to relational tables
//!
//! This is the umbrella crate of the Mitra reproduction (VLDB 2018, "Automated
//! Migration of Hierarchical Data to Relational Tables using Programming-by-Example").
//! It re-exports the public API of the underlying crates:
//!
//! * [`Mitra`] — the high-level engine (synthesize from XML/JSON + CSV examples, run
//!   programs, emit XSLT/JavaScript);
//! * [`hdt`] — hierarchical data trees and the XML/JSON plug-ins;
//! * [`dsl`] — the tree-to-table transformation DSL and its semantics;
//! * [`synth`] — the synthesis engine (DFA column learning, predicate learning,
//!   optimizer, execution engine);
//! * [`codegen`] — the XSLT and JavaScript back-ends;
//! * [`migrate`] — relational schemas, key generation and full-database migration;
//! * [`datagen`] — synthetic workloads used by the evaluation harness;
//! * [`trace`] — structured spans, the metrics registry and the Chrome-trace /
//!   folded-stack exporters (`MITRA_TRACE=off|summary|full`, DESIGN.md §9).
//!
//! See `examples/quickstart.rs` for a two-minute tour and DESIGN.md / EXPERIMENTS.md
//! for the mapping from the paper's evaluation to the benchmark harness.

pub use mitra_core::{codegen, dsl, hdt, migrate, synth, trace};
pub use mitra_core::{intern, Interner, Symbol, TagId};
pub use mitra_core::{parse_csv_table, Mitra, MitraError};
pub use mitra_datagen as datagen;
